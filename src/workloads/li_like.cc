/**
 * @file
 * 130.li stand-in: a Lisp-interpreter-flavoured workload built around
 * the ctak/tak recursion the paper's input (ctak.lsp) exercises.
 *
 * Characteristics targeted (from the paper):
 *  - very call-dense, deeply recursive -> local-heavy (~45% of refs),
 *    high memory reference rate, bandwidth-bound (Fig. 5/Fig. 11);
 *  - prologue/epilogue bursts of adjacent frame slots -> large gains
 *    from access combining under (3+1) (Fig. 8: ~16%);
 *  - local reloads far from their stores (across recursive subtrees)
 *    -> almost no fast-forwarding benefit (Table 3: 0.3%);
 *  - stack frames contend with heap cons cells in a unified L1 ->
 *    the LVC removes conflict misses and cuts L2 traffic (~24%,
 *    Section 4.2.1).
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildLiLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("li");
    GenCtx ctx(b, p.seed);

    // Cons-cell heap: a 32 KB wrapped arena, exactly the L1 size, so
    // heap cells and stack frames fight for L1 sets in the unified
    // configuration -- the conflicts behind the paper's 24% L2
    // traffic reduction for li (Section 4.2.1).
    const Addr heapBase = layout::HeapBase;
    const std::uint32_t heapMask = 0x7fff & ~3u;
    Addr allocOff = b.dataWord(0);

    Label main = b.newLabel("main");
    Label evalCtx = b.newLabel("eval_context");
    Label tak = b.newLabel("tak");

    // ---- main: loop `scale` times over a fixed tak tree, entered
    // through a chain of interpreter "eval" frames (ctak runs inside
    // xlisp's evaluator, whose context frames deepen the stack to
    // ~1.5 KB). ----
    b.bind(main);
    b.li(reg::s0, static_cast<std::int32_t>(p.scale)); // iterations
    b.li(reg::s1, 0);                                  // checksum
    Label loop = b.here();
    b.li(reg::a0, 22);                  // evaluator nesting depth
    b.jal(evalCtx);
    b.add(reg::s1, reg::s1, reg::v0);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, loop);
    finishMain(b, reg::s1);

    // ---- eval_context(depth): interpreter frame chain around tak --
    b.bind(evalCtx);
    Label evalDeeper = b.newLabel();
    b.bgtz(reg::a0, evalDeeper);
    b.li(reg::a0, 7);
    b.li(reg::a1, 4);
    b.li(reg::a2, 1);
    b.j(tak);                           // tail call into the tak tree
    b.bind(evalDeeper);
    FrameSpec evalFrame;
    evalFrame.localWords = 9;           // env, args, cont, ...
    evalFrame.savedRegs = {reg::s2, reg::s3};
    b.prologue(evalFrame);
    b.storeLocal(reg::a0, 0);
    b.addi(reg::a0, reg::a0, -1);
    b.jal(evalCtx);
    b.loadLocal(reg::t0, 0);
    b.add(reg::v0, reg::v0, reg::t0);
    b.epilogue(evalFrame);

    // ---- tak(x, y, z), consing one cell per recursive step ----
    //
    // tak(x,y,z) = z                      if !(y < x)
    //            = tak(tak(x-1,y,z),
    //                  tak(y-1,z,x),
    //                  tak(z-1,x,y))      otherwise
    b.bind(tak);
    Label recurse = b.newLabel();
    // Leaf fast path before any frame is built (as a compiler would
    // emit): roughly half of all calls return straight away, keeping
    // the overall local fraction near the paper's ~45%.
    b.slt(reg::t0, reg::a1, reg::a0); // t0 = y < x
    b.bne(reg::t0, reg::zero, recurse);
    b.move(reg::v0, reg::a2);
    b.ret();

    b.bind(recurse);
    FrameSpec frame;
    frame.localWords = 2;                       // a, bb
    frame.savedRegs = {reg::s0, reg::s1, reg::s2};
    frame.saveRa = true;
    b.prologue(frame);
    b.move(reg::s0, reg::a0);
    b.move(reg::s1, reg::a1);
    b.move(reg::s2, reg::a2);

    // Cons a cell (x . y . z) in the heap arena, then walk back
    // through recently allocated cells -- the evaluator reading its
    // environment chain. The backward strides sweep the whole arena
    // as the allocation cursor advances, so every L1 set sees heap
    // traffic (this is what makes the stack frames conflict with the
    // heap in a unified L1).
    ctx.bumpAlloc(reg::t4, allocOff, heapBase, 16, heapMask, reg::t5,
                  reg::t6);
    b.sw(reg::s0, 0, reg::t4);
    b.sw(reg::s1, 4, reg::t4);
    b.sw(reg::s2, 8, reg::t4);
    b.li(reg::t6, static_cast<std::int32_t>(heapBase));
    b.sub(reg::t7, reg::t4, reg::t6);   // arena offset of the cell
    for (int back : {4096, 8192, 12288}) {
        b.addi(reg::t5, reg::t7, -back);
        b.andi(reg::t5, reg::t5,
               static_cast<std::int32_t>(heapMask));
        b.add(reg::t5, reg::t5, reg::t6);
        b.lw(reg::t3, 0, reg::t5);
        b.xor_(reg::t7, reg::t7, reg::t3);
        b.andi(reg::t7, reg::t7,
               static_cast<std::int32_t>(heapMask));
    }
    b.lw(reg::t6, 4, reg::t4);
    b.lw(reg::t5, 8, reg::t4);

    // a = tak(x-1, y, z)
    b.addi(reg::a0, reg::s0, -1);
    b.move(reg::a1, reg::s1);
    b.move(reg::a2, reg::s2);
    b.jal(tak);
    b.storeLocal(reg::v0, 0);

    // bb = tak(y-1, z, x)
    b.addi(reg::a0, reg::s1, -1);
    b.move(reg::a1, reg::s2);
    b.move(reg::a2, reg::s0);
    b.jal(tak);
    b.storeLocal(reg::v0, 1);

    // c = tak(z-1, x, y)
    b.addi(reg::a0, reg::s2, -1);
    b.move(reg::a1, reg::s0);
    b.move(reg::a2, reg::s1);
    b.jal(tak);
    b.move(reg::a2, reg::v0);

    // return tak(a, bb, c)
    b.loadLocal(reg::a0, 0);
    b.loadLocal(reg::a1, 1);
    b.jal(tak);
    b.epilogue(frame);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
