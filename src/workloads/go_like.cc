/**
 * @file
 * 099.go stand-in: game-tree search over a global board — recursive
 * position evaluation with stack scratch buffers and heavy reading of
 * global state.
 *
 * Characteristics targeted: ~30% local fraction, modest store ratio,
 * recursion of depth 4-5, and enough short-distance local
 * store/reload pairs in the evaluator that fast forwarding yields a
 * visible ~2% gain (Table 3: 2.1%).
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildGoLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("go");
    GenCtx ctx(b, p.seed);

    constexpr int BoardWords = 512;     // 19x19 board, padded

    Addr moveCount = b.dataWord(0);
    Addr board = b.dataWords(BoardWords);

    Label main = b.newLabel("main");
    Label search = b.newLabel("search");
    Label evaluate = b.newLabel("evaluate");

    // ---- main ----
    b.bind(main);
    b.li(reg::s0, static_cast<std::int32_t>(p.scale * 3));
    b.li(reg::s1, 0);                   // checksum
    b.li(reg::s2, 0x4ee1);              // position salt

    // Seed the board.
    b.li(reg::t0, 0);
    b.move(reg::t7, reg::s2);
    Label seedLoop = b.here();
    ctx.lcgStep(reg::t7, reg::t6);
    b.sll(reg::t1, reg::t0, 2);
    b.la(reg::t2, board);
    b.add(reg::t2, reg::t2, reg::t1);
    b.sw(reg::t7, 0, reg::t2);
    b.addi(reg::t0, reg::t0, 1);
    b.slti(reg::t3, reg::t0, BoardWords);
    b.bne(reg::t3, reg::zero, seedLoop);

    Label loop = b.here();
    b.li(reg::a0, 4);                   // search depth
    b.move(reg::a1, reg::s2);
    b.jal(search);
    b.add(reg::s1, reg::s1, reg::v0);
    b.addi(reg::s2, reg::s2, 77);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, loop);
    finishMain(b, reg::s1);

    // ---- search(depth, pos): 2-way recursion + evaluation ----
    b.bind(search);
    Label deeper = b.newLabel();
    b.bgtz(reg::a0, deeper);
    // Depth exhausted: evaluate the position (tail call).
    b.move(reg::a0, reg::a1);
    b.j(evaluate);

    b.bind(deeper);
    FrameSpec sf;
    sf.localWords = 6;
    sf.savedRegs = {reg::s0, reg::s1, reg::s2};
    b.prologue(sf);
    b.move(reg::s0, reg::a0);
    b.move(reg::s1, reg::a1);
    // Generate two candidate moves from global board state.
    b.move(reg::t7, reg::a1);
    ctx.lcgStep(reg::t7, reg::t6);
    ctx.arrayLoad(reg::t5, reg::t7, board, BoardWords - 1, reg::t6);
    b.addi(reg::t3, reg::t7, 19);       // adjacent point
    ctx.arrayLoad(reg::t3, reg::t3, board, BoardWords - 1, reg::t6);
    b.add(reg::t5, reg::t5, reg::t3);
    b.storeLocal(reg::t5, 0);           // candidate A
    ctx.computeOps(4);
    b.loadLocal(reg::t4, 0);            // quick reload (fast-fwd food)
    b.xor_(reg::s2, reg::t4, reg::s1);

    b.addi(reg::a0, reg::s0, -1);
    b.move(reg::a1, reg::s2);
    b.jal(search);
    b.storeLocal(reg::v0, 1);

    b.addi(reg::a0, reg::s0, -1);
    b.xori(reg::a1, reg::s2, 0x2b2b);
    b.jal(search);
    b.loadLocal(reg::t0, 1);
    b.slt(reg::t1, reg::t0, reg::v0);   // max of the two branches
    Label keep = b.newLabel();
    b.bne(reg::t1, reg::zero, keep);
    b.move(reg::v0, reg::t0);
    b.bind(keep);
    b.epilogue(sf);

    // ---- evaluate(pos): scan a board neighbourhood with a local
    // scratch buffer (liberties / group marks). ----
    b.bind(evaluate);
    FrameSpec ef;
    ef.localWords = 10;
    ef.savedRegs = {};
    ef.saveRa = false;
    b.prologue(ef);
    b.move(reg::t7, reg::a0);
    b.li(reg::v0, 0);
    for (int n = 0; n < 8; ++n) {
        // Two board probes per neighbourhood step (global loads
        // dominate, as in the real evaluator).
        ctx.lcgStep(reg::t7, reg::t6);
        ctx.arrayLoad(reg::t5, reg::t7, board, BoardWords - 1,
                      reg::t6);
        b.addi(reg::t4, reg::t7, 1);
        ctx.arrayLoad(reg::t4, reg::t4, board, BoardWords - 1,
                      reg::t6);
        b.add(reg::t5, reg::t5, reg::t4);
        if (n % 3 == 0) {
            b.storeLocal(reg::t5, n % 4);   // occasional spill
            ctx.computeOps(2);
            b.loadLocal(reg::t4, n % 4);    // short-distance reload
            b.add(reg::v0, reg::v0, reg::t4);
        } else {
            b.add(reg::v0, reg::v0, reg::t5);
        }
    }
    // Write one liberty-count update back to the board (global store).
    b.move(reg::t7, reg::v0);
    ctx.arrayStore(reg::v0, reg::t7, board, BoardWords - 1, reg::t6);
    b.lw(reg::t0,
         static_cast<std::int32_t>(moveCount - layout::DataBase),
         reg::gp);
    b.addi(reg::t0, reg::t0, 1);
    b.sw(reg::t0,
         static_cast<std::int32_t>(moveCount - layout::DataBase),
         reg::gp);
    b.epilogue(ef);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
