/**
 * @file
 * 132.ijpeg stand-in: block-based image compression — copy an 8x8
 * block region from a global image into a stack buffer, run a
 * butterfly transform over the buffer, quantize with a global table
 * and write back.
 *
 * Characteristics targeted: ~30% local fraction with strong spatial
 * locality in the stack buffer (combinable bursts), short-distance
 * store/reload pairs inside the transform (fast-forward gain ~1.9%,
 * Table 3), and Section 4.4's note that the fast local path helps
 * beyond what extra L1 ports buy.
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildIjpegLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("ijpeg");
    GenCtx ctx(b, p.seed);

    constexpr int ImageWords = 16384;   // 64 KB image in the heap
    const Addr image = layout::HeapBase;
    Addr quantTable = b.dataWords(16);
    Addr blockCount = b.dataWord(0);

    Label main = b.newLabel("main");
    Label dct = b.newLabel("dct_block");

    // ---- main ----
    b.bind(main);
    b.li(reg::s0, static_cast<std::int32_t>(p.scale * 12)); // blocks
    b.li(reg::s1, 0);                   // checksum
    b.li(reg::s2, 0);                   // block cursor

    // Initialize the quantization table and a slice of the image.
    for (int i = 0; i < 16; ++i) {
        b.li(reg::t0, 3 + i * 2);
        b.sw(reg::t0,
             static_cast<std::int32_t>(quantTable - layout::DataBase) +
                 i * 4,
             reg::gp);
    }
    b.li(reg::t0, 0);
    b.li(reg::t7, 0xbeef);
    Label init = b.here();
    ctx.lcgStep(reg::t7, reg::t6);
    ctx.arrayStore(reg::t7, reg::t0, image, ImageWords - 1, reg::t5);
    b.addi(reg::t0, reg::t0, 1);
    b.slti(reg::t3, reg::t0, ImageWords);
    b.bne(reg::t3, reg::zero, init);

    Label loop = b.here();
    b.move(reg::a0, reg::s2);
    b.jal(dct);
    b.add(reg::s1, reg::s1, reg::v0);
    b.addi(reg::s2, reg::s2, 16);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, loop);
    finishMain(b, reg::s1);

    // ---- dct_block(offset): 16-word block through a stack buffer --
    b.bind(dct);
    FrameSpec f;
    f.localWords = 16;                  // the block buffer
    f.savedRegs = {reg::s0, reg::s1};
    b.prologue(f);
    b.move(reg::s0, reg::a0);

    // Block base cursor: blocks are 64-word aligned so the row-below
    // reads stay inside the image.
    b.andi(reg::t7, reg::s0, ImageWords - 64);
    b.sll(reg::t7, reg::t7, 2);
    b.la(reg::t6, image);
    b.add(reg::t6, reg::t6, reg::t7);   // t6 = &image[block]

    // Gather: two image samples per buffer word (32 global loads, 16
    // local stores to adjacent slots -- a highly combinable burst).
    for (int i = 0; i < 16; ++i) {
        b.lw(reg::t5, i * 4, reg::t6);
        b.lw(reg::t4, i * 4 + 64, reg::t6); // the row below
        b.add(reg::t5, reg::t5, reg::t4);
        b.storeLocal(reg::t5, i);
    }

    // Butterfly pass over the buffer: load pairs, combine, store
    // back -- short-distance local store/reload chains.
    for (int i = 0; i < 4; ++i) {
        int a = i;
        int c = 15 - i;
        b.loadLocal(reg::t0, a);
        b.loadLocal(reg::t1, c);
        b.add(reg::t2, reg::t0, reg::t1);
        b.sub(reg::t3, reg::t0, reg::t1);
        b.sra(reg::t2, reg::t2, 1);
        b.storeLocal(reg::t2, a);
        b.storeLocal(reg::t3, c);
    }
    ctx.computeOps(6);

    // Quantize + scatter back (16 local loads, 16 global stores).
    b.li(reg::s1, 0);
    for (int i = 0; i < 16; ++i) {
        b.loadLocal(reg::t0, i);
        b.lw(reg::t1,
             static_cast<std::int32_t>(quantTable - layout::DataBase) +
                 (i % 16) * 4,
             reg::gp);
        // Quantize by reciprocal multiply + shift (as libjpeg does;
        // real divides would serialize on the unpipelined dividers).
        b.mul(reg::t2, reg::t0, reg::t1);
        b.sra(reg::t2, reg::t2, 8);
        b.add(reg::s1, reg::s1, reg::t2);
        b.sw(reg::t2, i * 4, reg::t6);  // scatter through the cursor
    }

    b.lw(reg::t0,
         static_cast<std::int32_t>(blockCount - layout::DataBase),
         reg::gp);
    b.addi(reg::t0, reg::t0, 1);
    b.sw(reg::t0,
         static_cast<std::int32_t>(blockCount - layout::DataBase),
         reg::gp);
    b.move(reg::v0, reg::s1);
    b.epilogue(f);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
