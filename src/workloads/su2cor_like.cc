/**
 * @file
 * 103.su2cor stand-in: lattice QCD flavoured — a sweep over lattice
 * sites, each site calling a small 2x2 complex matrix-multiply
 * routine whose frame traffic and result writes create in-LSQ
 * store-to-load pairs.
 *
 * Characteristics targeted: FP code with noticeably more calls than
 * tomcatv/swim (one per site), giving it a mid-range local fraction;
 * the paper's Section 4.3 notes a slight (2+2) degradation for
 * su2cor caused by splitting store/load pairs between the shorter
 * queues — the matmul result-write/re-read pattern reproduces that
 * interaction.
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildSu2corLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("su2cor");
    GenCtx ctx(b, p.seed);

    constexpr int Sites = 1024;
    constexpr int MatWords = 8;         // 2x2 complex = 8 doubles
    constexpr Addr MatBytes = MatWords * 8;
    const Addr lattice = layout::HeapBase; // Sites matrices
    const Addr scratch = lattice + Sites * MatBytes;

    Label main = b.newLabel("main");
    Label sweep = b.newLabel("sweep");
    Label matmul = b.newLabel("matmul");

    // ---- main ----
    b.bind(main);
    b.li(reg::s0, static_cast<std::int32_t>(1 + p.scale / 12));
    b.li(reg::s7, 0);

    // Initialize the lattice.
    b.li(reg::t0, 0);
    b.la(reg::t1, lattice);
    b.li(reg::t2, Sites * MatWords);
    b.li(reg::t3, 1);
    b.cvtDW(2, reg::t3);
    b.cvtDW(1, reg::zero);
    Label init = b.here();
    b.addD(1, 1, 2);
    b.sd(1, 0, reg::t1);
    b.addi(reg::t1, reg::t1, 8);
    b.addi(reg::t0, reg::t0, 1);
    b.slt(reg::t4, reg::t0, reg::t2);
    b.bne(reg::t4, reg::zero, init);

    Label iter = b.here();
    b.jal(sweep);
    b.add(reg::s7, reg::s7, reg::v0);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, iter);
    finishMain(b, reg::s7);

    // ---- sweep: visit each site, multiply it by its neighbour ----
    b.bind(sweep);
    FrameSpec sf;
    sf.localWords = 4;
    sf.savedRegs = {reg::s1, reg::s2, reg::s3};
    b.prologue(sf);
    b.li(reg::s1, 0);                   // site index
    b.la(reg::s2, lattice);
    b.la(reg::s3, scratch);
    Label siteLoop = b.here();
    // a = &lattice[site], bmat = &lattice[(site+1) % Sites]
    b.li(reg::t0, MatBytes);
    b.mul(reg::t1, reg::s1, reg::t0);
    b.add(reg::a0, reg::s2, reg::t1);
    b.addi(reg::t2, reg::s1, 1);
    b.andi(reg::t2, reg::t2, Sites - 1);
    b.mul(reg::t3, reg::t2, reg::t0);
    b.add(reg::a1, reg::s2, reg::t3);
    b.move(reg::a2, reg::s3);           // result into scratch
    b.jal(matmul);

    // Read the freshly-written scratch matrix back and fold it into
    // the site (the store->load pair the LSQ forwards in a unified
    // machine).
    b.ld(3, 0, reg::s3);
    b.ld(4, 8, reg::s3);
    b.addD(3, 3, 4);
    b.li(reg::t0, MatBytes);
    b.mul(reg::t1, reg::s1, reg::t0);
    b.add(reg::t2, reg::s2, reg::t1);
    b.sd(3, 0, reg::t2);

    b.addi(reg::s1, reg::s1, 1);
    b.li(reg::t4, Sites);
    b.slt(reg::t5, reg::s1, reg::t4);
    b.bne(reg::t5, reg::zero, siteLoop);
    b.cvtWD(reg::v0, 3);
    b.epilogue(sf);

    // ---- matmul(a, b, out): 2x2 complex multiply ----
    b.bind(matmul);
    FrameSpec mf;
    mf.localWords = 4;
    mf.savedRegs = {};
    mf.saveRa = false;
    b.prologue(mf);
    b.storeLocal(reg::a0, 0);           // spills: FP codes run out of
    b.storeLocal(reg::a1, 1);           // address registers here
    // out[0..3] = a[0..3]*b[0] + a[1]*b[2] style butterfly.
    b.ld(3, 0, reg::a0);
    b.ld(4, 8, reg::a0);
    b.ld(5, 16, reg::a0);
    b.ld(6, 24, reg::a0);
    b.ld(7, 0, reg::a1);
    b.ld(8, 8, reg::a1);
    b.mulD(9, 3, 7);
    b.mulD(12, 4, 8);
    b.subD(9, 9, 12);
    b.sd(9, 0, reg::a2);
    b.mulD(13, 3, 8);
    b.mulD(14, 4, 7);
    b.addD(13, 13, 14);
    b.sd(13, 8, reg::a2);
    b.loadLocal(reg::t0, 0);            // reload a (short distance)
    b.ld(3, 32, reg::t0);
    b.ld(4, 40, reg::t0);
    b.mulD(9, 5, 7);
    b.mulD(12, 6, 8);
    b.addD(9, 9, 12);
    b.addD(9, 9, 3);
    b.sd(9, 16, reg::a2);
    b.mulD(13, 5, 8);
    b.subD(13, 13, 4);
    b.sd(13, 24, reg::a2);
    b.loadLocal(reg::t1, 1);
    b.xor_(reg::v0, reg::t0, reg::t1);
    b.epilogue(mf);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
