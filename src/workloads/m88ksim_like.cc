/**
 * @file
 * 124.m88ksim stand-in: an instruction-set simulator — a dispatch loop
 * fetching pseudo-instruction words from a global "program" image and
 * jumping through a handler table (indirect calls), each handler
 * updating a simulated register file in global memory.
 *
 * Characteristics targeted: moderate local fraction (~35% of refs,
 * entirely prologue/epilogue traffic), but handler bodies long enough
 * that the register save commits before the epilogue reload enters
 * the window — so almost no loads find their value in the LVAQ and
 * fast forwarding gains ~0% (Table 3).
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildM88ksimLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("m88ksim");
    GenCtx ctx(b, p.seed);

    constexpr int NumHandlers = 8;
    constexpr int SimRegs = 64;

    // Simulated machine state in global memory.
    Addr cycleCount = b.dataWord(0);
    Addr simRegFile = b.dataWords(SimRegs);
    Addr simProgram = b.dataWords(1024);   // pseudo-instruction image
    Addr handlerTable = b.dataWords(NumHandlers);

    Label main = b.newLabel("main");
    Label loadcore = b.newLabel("loadcore");
    std::vector<Label> handlers;
    handlers.reserve(NumHandlers);
    for (int i = 0; i < NumHandlers; ++i)
        handlers.push_back(
            b.newLabel("handler" + std::to_string(i)));

    // ---- main ----
    b.bind(main);
    FrameSpec mainFrame;
    mainFrame.localWords = 2;
    mainFrame.savedRegs = {reg::s0, reg::s1, reg::s2, reg::s3};
    b.prologue(mainFrame);

    // Load the simulated core image once at startup through a huge
    // stack buffer -- the real m88ksim's loadcore()/dumpcore() use
    // >11 K words of stack (the paper's footnote 6: such frames
    // overflow the 15-bit offset field, forcing the compiler to
    // address them through a secondary base register).
    b.jal(loadcore);

    // Fill the pseudo-program with random opcodes and the handler
    // table with code addresses.
    b.li(reg::t0, 0);
    b.li(reg::t7, static_cast<std::int32_t>(p.seed | 1));
    b.la(reg::s0, simProgram);
    Label fillLoop = b.here();
    ctx.lcgStep(reg::t7, reg::t6);
    b.srl(reg::t1, reg::t7, 8);
    b.sll(reg::t2, reg::t0, 2);
    b.add(reg::t2, reg::s0, reg::t2);
    b.sw(reg::t1, 0, reg::t2);
    b.addi(reg::t0, reg::t0, 1);
    b.slti(reg::t3, reg::t0, 1024);
    b.bne(reg::t3, reg::zero, fillLoop);

    // Handler table: absolute text addresses, loaded via jalr later.
    // We cannot take a label's address before finish(), so the table
    // is built with a chain of "la" pseudo-ops patched through labels:
    // emit one store per handler using the jump-and-link trick below.
    for (int i = 0; i < NumHandlers; ++i) {
        // jal over a single jr to capture the handler address would be
        // convoluted; instead main stores the address computed from a
        // jal-returned ra. Simpler: a dispatcher switch is used below,
        // so the table holds small indices the dispatcher decodes.
        b.li(reg::t1, i);
        b.sw(reg::t1,
             static_cast<std::int32_t>(handlerTable -
                                       layout::DataBase) + i * 4,
             reg::gp);
    }

    b.li(reg::s1, static_cast<std::int32_t>(p.scale * 24)); // steps
    b.li(reg::s2, 0);                    // checksum
    b.li(reg::s3, 0);                    // simulated pc
    Label dispatch = b.here("dispatch");

    // word = simProgram[pc & 1023]
    b.andi(reg::t0, reg::s3, 1023);
    b.sll(reg::t0, reg::t0, 2);
    b.la(reg::t1, simProgram);
    b.add(reg::t1, reg::t1, reg::t0);
    b.lw(reg::t2, 0, reg::t1);

    // opcode = word & (NumHandlers-1); switch via compare chain (the
    // real m88ksim uses a big switch that compiles similarly).
    b.andi(reg::t3, reg::t2, NumHandlers - 1);
    b.move(reg::a0, reg::t2);            // operand word
    Label after = b.newLabel("after_dispatch");
    for (int i = 0; i < NumHandlers; ++i) {
        Label next = b.newLabel();
        b.li(reg::t4, i);
        b.bne(reg::t3, reg::t4, next);
        b.jal(handlers[static_cast<std::size_t>(i)]);
        b.j(after);
        b.bind(next);
    }
    b.bind(after);
    b.add(reg::s2, reg::s2, reg::v0);

    // count a simulated cycle
    b.lw(reg::t0,
         static_cast<std::int32_t>(cycleCount - layout::DataBase),
         reg::gp);
    b.addi(reg::t0, reg::t0, 1);
    b.sw(reg::t0,
         static_cast<std::int32_t>(cycleCount - layout::DataBase),
         reg::gp);

    b.addi(reg::s3, reg::s3, 1);
    b.addi(reg::s1, reg::s1, -1);
    b.bgtz(reg::s1, dispatch);
    finishMain(b, reg::s2);

    // ---- loadcore: an 11 K-word stack buffer, hand-rolled frame ----
    //
    // The frame is too large for addi's 16-bit immediate and its
    // slots overflow the 15-bit load/store offset, so the prologue
    // and the accesses go through a secondary base register (t8) --
    // exactly the codegen the paper describes for this function.
    b.bind(loadcore);
    {
        constexpr std::int32_t CoreWords = 11 * 1024;
        b.li(reg::t8, CoreWords * 4);
        b.sub(reg::sp, reg::sp, reg::t8);   // allocate 44 KB
        b.move(reg::t8, reg::sp);           // secondary base
        // Touch a strided sample of the buffer (the real function
        // fills it from a file; we fill from the pseudo-program).
        b.li(reg::t0, 0);
        Label fillCore = b.here();
        b.sll(reg::t1, reg::t0, 2);
        b.add(reg::t2, reg::t8, reg::t1);
        b.sw(reg::t0, 0, reg::t2, true);    // local via computed base
        b.addi(reg::t0, reg::t0, 64);       // stride 64 words
        b.slti(reg::t3, reg::t0, CoreWords);
        b.bne(reg::t3, reg::zero, fillCore);
        // Read a few words back.
        b.lw(reg::v0, 0, reg::t8, true);
        b.lw(reg::t4, 1024, reg::t8, true);
        b.add(reg::v0, reg::v0, reg::t4);
        b.li(reg::t8, CoreWords * 4);
        b.add(reg::sp, reg::sp, reg::t8);   // release the frame
        b.ret();
    }

    // ---- handlers: long bodies over the simulated register file ----
    for (int i = 0; i < NumHandlers; ++i) {
        b.bind(handlers[static_cast<std::size_t>(i)]);
        FrameSpec f;
        f.localWords = 2 + static_cast<int>(ctx.rng.below(3));
        f.savedRegs = {reg::s0, reg::s1, reg::s2, reg::s3};
        b.prologue(f);
        b.move(reg::s0, reg::a0);
        b.storeLocal(reg::a0, 0);
        b.xori(reg::s2, reg::a0, 0x111);
        b.storeLocal(reg::s2, 1);

        // Decode fields.
        b.srl(reg::t0, reg::s0, 4);
        b.andi(reg::t0, reg::t0, SimRegs - 1);   // rs
        b.srl(reg::t1, reg::s0, 10);
        b.andi(reg::t1, reg::t1, SimRegs - 1);   // rt
        b.srl(reg::t2, reg::s0, 16);
        b.andi(reg::t2, reg::t2, SimRegs - 1);   // rd

        // Long compute body with several register-file updates; the
        // sheer length (> ROB size) is what starves the LVAQ of
        // forwarding opportunities.
        int bodyBlocks = 8 + static_cast<int>(ctx.rng.below(3));
        std::int32_t rfOff = static_cast<std::int32_t>(
            simRegFile - layout::DataBase);
        for (int blk = 0; blk < bodyBlocks; ++blk) {
            b.sll(reg::t4, reg::t0, 2);
            b.addi(reg::t4, reg::t4, rfOff);
            b.add(reg::t4, reg::gp, reg::t4);
            b.lw(reg::t5, 0, reg::t4);           // rf[rs]
            b.sll(reg::t6, reg::t1, 2);
            b.addi(reg::t6, reg::t6, rfOff);
            b.add(reg::t6, reg::gp, reg::t6);
            b.lw(reg::t7, 0, reg::t6);           // rf[rt]
            b.lw(reg::s3, 4, reg::t6);           // rf[rt+1] (pair op)
            ctx.computeOps(8);
            b.add(reg::s1, reg::t5, reg::t7);
            b.add(reg::s1, reg::s1, reg::s3);
            b.sll(reg::t4, reg::t2, 2);
            b.addi(reg::t4, reg::t4, rfOff);
            b.add(reg::t4, reg::gp, reg::t4);
            b.sw(reg::s1, 0, reg::t4);           // rf[rd] = result
            // Rotate the decoded fields so blocks differ.
            b.addi(reg::t0, reg::t1, 0);
            b.addi(reg::t1, reg::t2, 0);
            b.andi(reg::t2, reg::s1, SimRegs - 1);
        }

        b.loadLocal(reg::t3, 0);                 // epilogue-time reload
        b.loadLocal(reg::s2, 1);
        b.add(reg::v0, reg::s1, reg::t3);
        b.add(reg::v0, reg::v0, reg::s2);
        b.epilogue(f);
    }

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
