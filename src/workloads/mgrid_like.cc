/**
 * @file
 * 107.mgrid stand-in: multigrid relaxation — 7-point 3D stencils over
 * a cube, plus coarse-grid passes at stride 2. Almost no calls (one
 * per level pass), the lowest local fraction of the FP set.
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildMgridLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("mgrid");
    GenCtx ctx(b, p.seed);

    constexpr int N = 20;               // cube edge
    constexpr int Plane = N * N;
    const Addr gridA = layout::HeapBase;
    const Addr gridB = gridA + static_cast<Addr>(N * N * N * 8);

    Addr w0 = b.dataDouble(0.5);
    Addr w1 = b.dataDouble(0.0833333);

    Label main = b.newLabel("main");
    Label smooth = b.newLabel("smooth");

    // ---- main ----
    b.bind(main);
    b.li(reg::s0, static_cast<std::int32_t>(1 + p.scale / 10));
    b.li(reg::s7, 0);

    // Initialize grid A.
    b.li(reg::t0, 0);
    b.la(reg::t1, gridA);
    b.li(reg::t2, N * N * N);
    b.li(reg::t3, 1);
    b.cvtDW(2, reg::t3);
    b.cvtDW(1, reg::zero);
    Label init = b.here();
    b.addD(1, 1, 2);
    b.sd(1, 0, reg::t1);
    b.addi(reg::t1, reg::t1, 8);
    b.addi(reg::t0, reg::t0, 1);
    b.slt(reg::t4, reg::t0, reg::t2);
    b.bne(reg::t4, reg::zero, init);

    b.ld(10, static_cast<std::int32_t>(w0 - layout::DataBase), reg::gp);
    b.ld(11, static_cast<std::int32_t>(w1 - layout::DataBase), reg::gp);

    Label iter = b.here();
    // Fine pass A -> B, then B -> A (two "levels").
    b.la(reg::a0, gridA);
    b.la(reg::a1, gridB);
    b.li(reg::a2, 1);                   // stride
    b.jal(smooth);
    b.add(reg::s7, reg::s7, reg::v0);
    b.la(reg::a0, gridB);
    b.la(reg::a1, gridA);
    b.li(reg::a2, 2);                   // coarse stride
    b.jal(smooth);
    b.add(reg::s7, reg::s7, reg::v0);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, iter);
    finishMain(b, reg::s7);

    // ---- smooth(src, dst, stride): 7-point stencil over the cube --
    b.bind(smooth);
    FrameSpec f;
    f.localWords = 6;
    f.savedRegs = {reg::s1, reg::s2, reg::s3};
    b.prologue(f);
    b.move(reg::s1, reg::a0);           // src
    b.move(reg::s2, reg::a1);           // dst
    b.move(reg::s3, reg::a2);           // stride
    b.storeLocal(reg::a2, 0);

    b.li(reg::t8, 1);                   // k (plane index)
    Label kLoop = b.here();
    b.storeLocal(reg::t8, 1);
    // cursor = base + ((k*Plane + N + 1) * 8)
    b.li(reg::t0, Plane * 8);
    b.mul(reg::t1, reg::t8, reg::t0);
    b.addi(reg::t1, reg::t1, (N + 1) * 8);
    b.add(reg::t2, reg::s1, reg::t1);   // src cursor
    b.add(reg::t3, reg::s2, reg::t1);   // dst cursor
    b.li(reg::t6, 160);                 // interior cells per plane
    b.sll(reg::t4, reg::s3, 3);         // stride in bytes
    // Four cells per chunk with the counter spilled across the chunk
    // (the only local traffic in this loop nest).
    Label cell = b.here();
    b.storeLocal(reg::t6, 2);
    for (int u = 0; u < 4; ++u) {
        b.ld(3, 0, reg::t2);
        b.ld(4, 8, reg::t2);
        b.ld(5, -8, reg::t2);
        b.ld(6, N * 8, reg::t2);
        b.ld(7, -(N * 8), reg::t2);
        b.ld(8, Plane * 8, reg::t2);
        b.ld(9, -(Plane * 8), reg::t2);
        b.addD(4, 4, 5);
        b.addD(6, 6, 7);
        b.addD(8, 8, 9);
        b.addD(4, 4, 6);
        b.addD(4, 4, 8);
        b.mulD(3, 3, 10);
        b.mulD(4, 4, 11);
        b.addD(3, 3, 4);
        b.sd(3, 0, reg::t3);
        // advance by stride elements
        b.add(reg::t2, reg::t2, reg::t4);
        b.add(reg::t3, reg::t3, reg::t4);
    }
    b.loadLocal(reg::t6, 2);
    b.addi(reg::t6, reg::t6, -4);
    b.bgtz(reg::t6, cell);
    b.loadLocal(reg::t8, 1);
    b.addi(reg::t8, reg::t8, 1);
    b.li(reg::t0, N - 1);
    b.slt(reg::t1, reg::t8, reg::t0);
    b.bne(reg::t1, reg::zero, kLoop);
    b.loadLocal(reg::t5, 0);
    b.cvtWD(reg::v0, 3);
    b.add(reg::v0, reg::v0, reg::t5);
    b.epilogue(f);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
