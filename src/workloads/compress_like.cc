/**
 * @file
 * 129.compress stand-in: an LZW-flavoured loop hashing input bytes
 * into a heap hash table.
 *
 * Characteristics targeted: the paper's least local program (~10% of
 * refs), almost no calls, but the few local accesses it has are
 * short-distance spill/reload pairs — ~80% of its local loads find
 * their value in the LVAQ, which is why it still gains 1.2% from fast
 * forwarding (Table 3 / Section 4.2.3).
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildCompressLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("compress");
    GenCtx ctx(b, p.seed);

    // Input buffer: 16 KB of pseudo-random bytes, initialized by code.
    // Hash table: 32 K entries (128 KB) in the heap -- large enough to
    // miss in L1 regularly, as the real compress does.
    Addr outCount = b.dataWord(0);      // gp-relative, so keep it low
    const Addr input = b.dataWords(4096);
    const Addr hashTable = layout::HeapBase;
    const std::uint32_t hashMask = 0x7fff; // 32 K entries

    Label main = b.newLabel("main");
    Label flushOut = b.newLabel("flush_output");

    b.bind(main);
    FrameSpec mainFrame;
    mainFrame.localWords = 4;
    mainFrame.savedRegs = {reg::s0, reg::s1, reg::s2, reg::s3,
                           reg::s4};
    b.prologue(mainFrame);

    // Initialize the input buffer with an LCG (byte stores).
    b.li(reg::t0, 0);                   // index
    b.li(reg::t7, 0x1234567);           // lcg state
    b.la(reg::s0, input);
    Label initLoop = b.here();
    ctx.lcgStep(reg::t7, reg::t6);
    b.srl(reg::t1, reg::t7, 16);
    b.add(reg::t2, reg::s0, reg::t0);
    b.sb(reg::t1, 0, reg::t2);
    b.addi(reg::t0, reg::t0, 1);
    b.slti(reg::t3, reg::t0, 16384);
    b.bne(reg::t3, reg::zero, initLoop);

    // Main compression loop.
    b.li(reg::s1, static_cast<std::int32_t>(p.scale * 320)); // bytes
    b.li(reg::s2, 0);                   // checksum
    b.li(reg::s3, 0);                   // current code
    b.li(reg::s4, 0);                   // input cursor
    Label loop = b.here();

    // ch = input[cursor & 16383], plus the next byte lookahead and a
    // word of context -- the read-heavy front of the LZW loop.
    b.andi(reg::t0, reg::s4, 16383);
    b.add(reg::t1, reg::s0, reg::t0);
    b.lbu(reg::t2, 0, reg::t1);
    b.lbu(reg::t4, 1, reg::t1);
    b.andi(reg::t5, reg::t0, 16380);
    b.add(reg::t5, reg::s0, reg::t5);
    b.lw(reg::t6, 0, reg::t5);
    b.xor_(reg::t2, reg::t2, reg::t6);
    b.add(reg::t2, reg::t2, reg::t4);

    // Every other byte, spill the partially-built code word and
    // reload it shortly after -- the short-distance spill/reload pair
    // the real compress inner loop produces when registers run out.
    // (Alternating keeps the overall local fraction near the paper's
    // ~10% for this program.)
    Label noSpill = b.newLabel();
    Label spillDone = b.newLabel();
    b.andi(reg::t3, reg::s4, 1);
    b.bne(reg::t3, reg::zero, noSpill);
    b.storeLocal(reg::s3, 0);
    b.sll(reg::t3, reg::s3, 8);
    b.xor_(reg::t3, reg::t3, reg::t2);
    ctx.computeOps(6);
    b.loadLocal(reg::t4, 0);            // reload: ~10 insts away
    b.add(reg::t3, reg::t3, reg::t4);
    b.j(spillDone);
    b.bind(noSpill);
    b.sll(reg::t3, reg::s3, 8);
    b.xor_(reg::t3, reg::t3, reg::t2);
    ctx.computeOps(6);
    b.add(reg::t3, reg::t3, reg::s3);
    b.bind(spillDone);

    // Probe the hash table (heap): primary plus one secondary probe.
    b.move(reg::t5, reg::t3);
    ctx.lcgStep(reg::t5, reg::t6);
    b.srl(reg::t5, reg::t5, 8);
    ctx.arrayLoad(reg::t6, reg::t5, hashTable, hashMask, reg::t7);
    b.addi(reg::t7, reg::t5, 1);
    ctx.arrayLoad(reg::t7, reg::t7, hashTable, hashMask, reg::t1);
    b.add(reg::t6, reg::t6, reg::t7);
    b.sub(reg::t6, reg::t6, reg::t7);   // keep t6 = primary entry

    Label hit = b.newLabel();
    Label cont = b.newLabel();
    b.beq(reg::t6, reg::t3, hit);
    // Miss: install the new code.
    b.move(reg::t5, reg::t3);
    ctx.lcgStep(reg::t5, reg::at);
    b.srl(reg::t5, reg::t5, 8);
    ctx.arrayStore(reg::t3, reg::t5, hashTable, hashMask, reg::t7);
    b.addi(reg::s3, reg::t2, 0);        // restart code from ch
    b.j(cont);
    b.bind(hit);
    b.move(reg::s3, reg::t3);           // extend the current code
    b.bind(cont);

    ctx.computeOps(5);
    b.add(reg::s2, reg::s2, reg::s3);
    b.addi(reg::s4, reg::s4, 1);

    // Occasionally flush output (a rare call).
    b.andi(reg::t0, reg::s4, 1023);
    Label noFlush = b.newLabel();
    b.bne(reg::t0, reg::zero, noFlush);
    b.move(reg::a0, reg::s2);
    b.jal(flushOut);
    b.bind(noFlush);

    b.addi(reg::s1, reg::s1, -1);
    b.bgtz(reg::s1, loop);

    b.move(reg::t0, reg::s2);
    b.print(reg::t0);
    b.halt();

    // ---- flush_output(sum): small function, rare ----
    b.bind(flushOut);
    FrameSpec flushFrame;
    flushFrame.localWords = 2;
    flushFrame.savedRegs = {};
    flushFrame.saveRa = false;
    b.prologue(flushFrame);
    b.storeLocal(reg::a0, 0);
    b.lw(reg::t0,
         static_cast<std::int32_t>(outCount - layout::DataBase),
         reg::gp);
    b.addi(reg::t0, reg::t0, 1);
    b.sw(reg::t0,
         static_cast<std::int32_t>(outCount - layout::DataBase),
         reg::gp);
    b.loadLocal(reg::v0, 0);
    b.epilogue(flushFrame);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
