/**
 * @file
 * 101.tomcatv stand-in: vectorized mesh generation — seven N x N
 * double arrays, a residual pass reading the coordinate arrays and
 * writing residuals, then a relaxation pass folding the residuals
 * back in. Calls are rare (two per iteration); local accesses cluster
 * at pass entry/exit and row boundaries.
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildTomcatvLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("tomcatv");
    GenCtx ctx(b, p.seed);

    constexpr int N = 42;               // interior divisible by 2
    constexpr Addr A = N * N * 8;       // bytes per array
    const Addr arrX = layout::HeapBase;
    const Addr arrY = arrX + A;
    const Addr arrRX = arrY + A;
    const Addr arrRY = arrRX + A;
    const Addr arrD = arrRY + A;

    Addr relax = b.dataDouble(0.0625);

    Label main = b.newLabel("main");
    Label residual = b.newLabel("residual_pass");
    Label update = b.newLabel("update_pass");

    // ---- main ----
    b.bind(main);
    b.li(reg::s0, static_cast<std::int32_t>(1 + p.scale / 10));
    b.li(reg::s7, 0);

    // Initialize X and Y.
    b.li(reg::t0, 0);
    b.la(reg::t1, arrX);
    b.li(reg::t2, 2 * N * N);
    b.li(reg::t3, 3);
    b.cvtDW(2, reg::t3);
    b.cvtDW(1, reg::zero);
    Label init = b.here();
    b.addD(1, 1, 2);
    b.sd(1, 0, reg::t1);
    b.addi(reg::t1, reg::t1, 8);
    b.addi(reg::t0, reg::t0, 1);
    b.slt(reg::t4, reg::t0, reg::t2);
    b.bne(reg::t4, reg::zero, init);

    b.ld(10, static_cast<std::int32_t>(relax - layout::DataBase),
         reg::gp);

    Label iter = b.here();
    b.jal(residual);
    b.add(reg::s7, reg::s7, reg::v0);
    b.jal(update);
    b.add(reg::s7, reg::s7, reg::v0);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, iter);
    finishMain(b, reg::s7);

    // ---- residual_pass: RX,RY <- stencil(X, Y) ----
    b.bind(residual);
    FrameSpec rf;
    rf.localWords = 10;
    rf.savedRegs = {reg::s1, reg::s2};
    b.prologue(rf);
    b.la(reg::s1, arrX);
    b.la(reg::s2, arrY);
    b.li(reg::t8, 1);                   // row
    Label rRow = b.here();
    b.storeLocal(reg::t8, 0);           // spill cluster per row
    b.storeLocal(reg::s1, 1);
    b.storeLocal(reg::s2, 2);
    b.li(reg::t0, N * 8);
    b.mul(reg::t1, reg::t8, reg::t0);
    b.addi(reg::t1, reg::t1, 8);
    b.add(reg::t2, reg::s1, reg::t1);   // x cursor
    b.add(reg::t3, reg::s2, reg::t1);   // y cursor
    b.li(reg::t4, static_cast<std::int32_t>(arrRX - arrX));
    b.add(reg::t4, reg::t2, reg::t4);   // rx cursor
    b.li(reg::t5, static_cast<std::int32_t>(arrRY - arrX));
    b.add(reg::t5, reg::t2, reg::t5);   // ry cursor
    b.li(reg::t6, N - 2);
    // Two-cell unrolled residual body with a spilled counter.
    Label rCell = b.here();
    b.storeLocal(reg::t6, 3);
    for (int u = 0; u < 2; ++u) {
        int o = u * 8;
        b.ld(3, o - 8, reg::t2);
        b.ld(4, o + 8, reg::t2);
        b.ld(5, o - N * 8, reg::t2);
        b.ld(6, o + N * 8, reg::t2);
        b.ld(7, o, reg::t3);
        b.addD(3, 3, 4);
        b.addD(5, 5, 6);
        b.addD(3, 3, 5);
        b.mulD(4, 7, 10);
        b.subD(3, 3, 4);
        b.sd(3, o, reg::t4);            // rx
        b.mulD(5, 3, 10);
        b.sd(5, o, reg::t5);            // ry
    }
    b.addi(reg::t2, reg::t2, 16);
    b.addi(reg::t3, reg::t3, 16);
    b.addi(reg::t4, reg::t4, 16);
    b.addi(reg::t5, reg::t5, 16);
    b.loadLocal(reg::t6, 3);
    b.addi(reg::t6, reg::t6, -2);
    b.bgtz(reg::t6, rCell);
    b.loadLocal(reg::t8, 0);
    b.loadLocal(reg::s1, 1);
    b.loadLocal(reg::s2, 2);
    b.addi(reg::t8, reg::t8, 1);
    b.li(reg::t0, N - 1);
    b.slt(reg::t1, reg::t8, reg::t0);
    b.bne(reg::t1, reg::zero, rRow);
    b.cvtWD(reg::v0, 3);
    b.epilogue(rf);

    // ---- update_pass: X,Y += relax * (RX,RY); D accumulates error --
    b.bind(update);
    FrameSpec uf;
    uf.localWords = 6;
    uf.savedRegs = {reg::s1};
    b.prologue(uf);
    b.la(reg::s1, arrX);
    b.li(reg::t8, 1);
    Label uRow = b.here();
    b.storeLocal(reg::t8, 0);
    b.storeLocal(reg::s1, 1);
    b.li(reg::t0, N * 8);
    b.mul(reg::t1, reg::t8, reg::t0);
    b.addi(reg::t1, reg::t1, 8);
    b.add(reg::t2, reg::s1, reg::t1);   // x cursor
    b.li(reg::t4, static_cast<std::int32_t>(arrRX - arrX));
    b.add(reg::t4, reg::t2, reg::t4);   // rx cursor
    b.li(reg::t5, static_cast<std::int32_t>(arrD - arrX));
    b.add(reg::t5, reg::t2, reg::t5);   // d cursor
    b.li(reg::t6, N - 2);
    Label uCell = b.here();
    b.storeLocal(reg::t6, 3);
    for (int u = 0; u < 2; ++u) {
        int o = u * 8;
        b.ld(3, o, reg::t2);
        b.ld(4, o, reg::t4);
        b.mulD(4, 4, 10);
        b.addD(3, 3, 4);
        b.sd(3, o, reg::t2);
        b.ld(5, o, reg::t5);
        b.addD(5, 5, 4);
        b.sd(5, o, reg::t5);
    }
    b.addi(reg::t2, reg::t2, 16);
    b.addi(reg::t4, reg::t4, 16);
    b.addi(reg::t5, reg::t5, 16);
    b.loadLocal(reg::t6, 3);
    b.addi(reg::t6, reg::t6, -2);
    b.bgtz(reg::t6, uCell);
    b.loadLocal(reg::t8, 0);
    b.loadLocal(reg::s1, 1);
    b.addi(reg::t8, reg::t8, 1);
    b.li(reg::t0, N - 1);
    b.slt(reg::t1, reg::t8, reg::t0);
    b.bne(reg::t1, reg::zero, uRow);
    b.cvtWD(reg::v0, 5);
    b.epilogue(uf);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
