/**
 * @file
 * Adversarial workload generators: synthetic programs built to stress
 * the decoupling machinery where the SPEC95-like suite is gentle —
 * dependent pointer chases with no locality, recursion deep enough to
 * overflow the LVC, frames too large for the 15-bit offset field
 * (the paper's footnote 6), and alloca-style dynamically-sized frames
 * that defeat static stack analysis. They register as first-class
 * workloads (workloads::find / build / the benches' --programs=), but
 * deliberately stay out of workloads::all() so the 12-workload
 * differential baselines and figure benches are untouched.
 */

#include "workloads/workloads.hh"

#include <algorithm>
#include <numeric>

#include "isa/regs.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;
using prog::ProgramBuilder;

prog::Program
buildPtrChase(const WorkloadParams &p)
{
    ProgramBuilder b("ptrchase");
    Rng rng(p.seed ^ 0xadc0ffeeull);

    // A single-cycle random permutation over N heap nodes (Sattolo's
    // algorithm), laid out as one absolute next-pointer per node. The
    // footprint (16 KB) exceeds the LVC and thrashes L1 sets; every
    // load is address-dependent on the previous one.
    constexpr std::uint32_t N = 4096;
    std::vector<std::uint32_t> perm(N);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::uint32_t i = N - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i)]);
    std::vector<std::uint32_t> next(N);
    for (std::uint32_t i = 0; i < N; ++i)
        next[perm[i]] = perm[(i + 1) % N];

    const Addr sentinel = b.dataWord(0);
    const Addr base = sentinel + 4;
    for (std::uint32_t i = 0; i < N; ++i)
        b.dataWord(base + 4 * next[i]);

    const std::uint64_t iters =
        std::min<std::uint64_t>(p.scale * 256, 1u << 30);

    b.la(reg::t0, base);
    b.li(reg::s0, 0);
    b.li(reg::s1, static_cast<std::int32_t>(iters));
    Label loop = b.here("chase");
    b.lw(reg::t0, 0, reg::t0);          // dependent heap chase
    b.add(reg::s0, reg::s0, reg::t0);
    b.xor_(reg::t4, reg::s0, reg::t0);  // cheap non-memory padding
    b.srl(reg::t4, reg::t4, 3);
    b.addi(reg::s1, reg::s1, -1);
    b.bgtz(reg::s1, loop);
    finishMain(b, reg::s0);
    return b.finish();
}

prog::Program
buildDeepRec(const WorkloadParams &p)
{
    ProgramBuilder b("deeprec");
    const std::int32_t depth =
        256 + static_cast<std::int32_t>(p.seed % 128);
    const std::uint64_t outer = std::max<std::uint64_t>(p.scale, 1);

    Label rec = b.newLabel("rec");

    b.li(reg::s0, 0);
    b.li(reg::s1, static_cast<std::int32_t>(
                      std::min<std::uint64_t>(outer, 1u << 24)));
    Label loop = b.here("outer");
    b.li(reg::a0, depth);
    b.call(rec);
    b.add(reg::s0, reg::s0, reg::v0);
    b.addi(reg::s1, reg::s1, -1);
    b.bgtz(reg::s1, loop);
    finishMain(b, reg::s0);

    // rec(n): small frame, local spill/reload on both sides of the
    // recursive call; depth * outer dynamic activations keep hundreds
    // of live frames stacked, far past the LVC's reach.
    const FrameSpec frame{4, {reg::s2}, true};
    Label base = b.newLabel(), done = b.newLabel();
    b.bind(rec);
    b.prologue(frame);
    b.storeLocal(reg::a0, 0);
    b.move(reg::s2, reg::a0);
    b.blez(reg::a0, base);
    b.addi(reg::a0, reg::a0, -1);
    b.call(rec);
    b.loadLocal(reg::t0, 0);
    b.add(reg::v0, reg::v0, reg::t0);
    b.j(done);
    b.bind(base);
    b.li(reg::v0, 1);
    b.bind(done);
    b.storeLocal(reg::v0, 1);
    b.loadLocal(reg::t1, 1);
    b.add(reg::v0, reg::t1, reg::zero);
    b.epilogue(frame);
    return b.finish();
}

prog::Program
buildHugeFrame(const WorkloadParams &p)
{
    ProgramBuilder b("hugeframe");
    const std::uint64_t iters =
        std::min<std::uint64_t>(std::max<std::uint64_t>(p.scale, 1) * 32,
                                1u << 24);

    Label big = b.newLabel("big");

    b.li(reg::s0, 0);
    b.li(reg::s1, static_cast<std::int32_t>(iters));
    Label loop = b.here("outer");
    b.call(big);
    b.add(reg::s0, reg::s0, reg::v0);
    b.addi(reg::s1, reg::s1, -1);
    b.bgtz(reg::s1, loop);
    finishMain(b, reg::s0);

    // big(): a 24000-byte frame — far beyond both the LVC and the
    // 15-bit memory offset field. Slots under 16 KB are addressed off
    // sp with the compiler's local annotation; the rest go through a
    // secondary base register (sp + 16000), reproducing the paper's
    // footnote-6 spill idiom. The secondary-base accesses carry no
    // hint, so only sp-tracking (runtime or ddlint-style) sees them
    // as local.
    constexpr std::int32_t FrameBytes = 24000;
    b.bind(big);
    b.addi(reg::sp, reg::sp, -FrameBytes);
    b.addi(reg::t8, reg::sp, 16000);
    b.li(reg::v0, 0);
    for (int k = 0; k < 10; ++k) {
        const std::int32_t nearOff = k * 1500;
        b.sw(reg::s1, nearOff, reg::sp, /*local=*/true);
        b.lw(reg::t0, nearOff, reg::sp, /*local=*/true);
        b.add(reg::v0, reg::v0, reg::t0);
    }
    for (int k = 0; k < 10; ++k) {
        const std::int32_t farOff = k * 760;
        b.sw(reg::v0, farOff, reg::t8);
        b.lw(reg::t1, farOff, reg::t8);
        b.add(reg::v0, reg::v0, reg::t1);
    }
    b.addi(reg::sp, reg::sp, FrameBytes);
    b.ret();
    return b.finish();
}

prog::Program
buildAllocaFrame(const WorkloadParams &p)
{
    ProgramBuilder b("allocaframe");
    GenCtx g(b, p.seed ^ 0xa110caull);
    const std::uint64_t iters =
        std::min<std::uint64_t>(std::max<std::uint64_t>(p.scale, 1) * 128,
                                1u << 26);

    Label fn = b.newLabel("fn");

    b.li(reg::s0, 0);
    b.li(reg::s3,
         static_cast<std::int32_t>(p.seed ^ 0x5eedf00d));
    b.li(reg::s1, static_cast<std::int32_t>(iters));
    Label loop = b.here("outer");
    b.move(reg::a0, reg::s3);
    b.call(fn);
    g.lcgStep(reg::s3, reg::t9);
    b.add(reg::s0, reg::s0, reg::v0);
    b.addi(reg::s1, reg::s1, -1);
    b.bgtz(reg::s1, loop);
    finishMain(b, reg::s0);

    // fn(x): allocate a runtime-variable 8..260 byte block straight
    // off sp (alloca), touch it, free it. The frame size depends on
    // the argument, so no static analysis can prove the sp offsets —
    // only the runtime sp-tracking annotation classifies these
    // accesses as local. None of the alloca accesses carry the
    // compiler hint.
    const FrameSpec frame{2, {}, true};
    b.bind(fn);
    b.prologue(frame);
    b.andi(reg::t0, reg::a0, 0xFC);
    b.addi(reg::t0, reg::t0, 8);
    b.sub(reg::sp, reg::sp, reg::t0);  // dynamic frame
    b.sw(reg::a0, 0, reg::sp);
    b.sw(reg::t0, 4, reg::sp);
    b.lw(reg::v0, 0, reg::sp);
    b.lw(reg::t1, 4, reg::sp);
    b.add(reg::v0, reg::v0, reg::t1);
    b.add(reg::sp, reg::sp, reg::t0);  // free it
    b.epilogue(frame);
    return b.finish();
}

const std::vector<WorkloadInfo> &
adversarial()
{
    static const std::vector<WorkloadInfo> registry = {
        {"ptrchase", "adv.ptrchase",
         "dependent random pointer chase over a 16 KB heap cycle",
         false, &buildPtrChase, 120},
        {"deeprec", "adv.deeprec",
         "deep recursion with small spill-heavy frames", false,
         &buildDeepRec, 60},
        {"hugeframe", "adv.hugeframe",
         "24 KB frames addressed through a secondary base register",
         false, &buildHugeFrame, 230},
        {"allocaframe", "adv.allocaframe",
         "alloca-style dynamically-sized frames off sp", false,
         &buildAllocaFrame, 110},
    };
    return registry;
}

} // namespace ddsim::workloads
