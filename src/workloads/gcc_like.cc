/**
 * @file
 * 126.gcc stand-in: a compiler-shaped workload — many distinct
 * functions with widely varying frame sizes, a recursive tree walk
 * over a heap-allocated IR, and pointer-chasing between passes.
 *
 * Characteristics targeted: the paper's worst program for the LVC
 * (highest miss rate at 2 KB, Fig. 6 — driven by a large *active*
 * stack footprint: big frames and deep call swings), a slight L2
 * traffic increase with the LVC (Section 4.2.1), and a moderate
 * (~40%) local fraction.
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildGccLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("gcc");
    GenCtx ctx(b, p.seed);

    constexpr int NumPassFuncs = 24;

    // Heap IR arena: 128 KB of 16-byte nodes.
    const Addr heapBase = layout::HeapBase;
    const std::uint32_t heapMask = 0x1ffff & ~3u;
    Addr allocOff = b.dataWord(0);
    Addr nodeCount = b.dataWord(0);

    Label main = b.newLabel("main");
    Label walk = b.newLabel("walk_tree");
    std::vector<Label> passes;
    passes.reserve(NumPassFuncs);
    for (int i = 0; i < NumPassFuncs; ++i)
        passes.push_back(b.newLabel("pass" + std::to_string(i)));

    // ---- main ----
    b.bind(main);
    b.li(reg::s0, static_cast<std::int32_t>(p.scale));
    b.li(reg::s1, 0);                   // checksum
    Label loop = b.here();
    // One "compilation unit": recursive walk + a chain of passes.
    b.li(reg::a0, 9);                   // walk depth
    b.move(reg::a1, reg::s0);
    b.jal(walk);
    b.add(reg::s1, reg::s1, reg::v0);
    for (int i = 0; i < NumPassFuncs; i += 3) {
        b.move(reg::a0, reg::s1);
        b.jal(passes[static_cast<std::size_t>(i)]);
        b.add(reg::s1, reg::s1, reg::v0);
    }
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, loop);
    finishMain(b, reg::s1);

    // ---- walk_tree(depth, salt): binary recursion with a 20-word
    // frame; depth 9 swings the stack pointer across ~1.5 KB+, which
    // together with the pass frames overflows a 2 KB LVC. ----
    b.bind(walk);
    Label recurse = b.newLabel();
    b.bgtz(reg::a0, recurse);
    // Leaf: allocate an IR node and return its hash.
    ctx.bumpAlloc(reg::t4, allocOff, heapBase, 16, heapMask, reg::t5,
                  reg::t6);
    b.sw(reg::a1, 0, reg::t4);
    b.lw(reg::t0,
         static_cast<std::int32_t>(nodeCount - layout::DataBase),
         reg::gp);
    b.addi(reg::t0, reg::t0, 1);
    b.sw(reg::t0,
         static_cast<std::int32_t>(nodeCount - layout::DataBase),
         reg::gp);
    b.xor_(reg::v0, reg::a1, reg::t0);
    b.ret();

    b.bind(recurse);
    FrameSpec walkFrame;
    // A solid frame (gcc's tree-walkers carry sizeable locals): the
    // depth-9 recursion swings the stack across ~1 KB, which together
    // with the pass chain stresses small LVCs while fitting 4 KB.
    walkFrame.localWords = 16;
    walkFrame.savedRegs = {reg::s0, reg::s1, reg::s2};
    b.prologue(walkFrame);
    b.move(reg::s0, reg::a0);
    b.move(reg::s1, reg::a1);
    // Touch a spread of the frame (sparse, like live-range data).
    b.storeLocal(reg::a0, 0);
    b.storeLocal(reg::a1, 7);
    b.storeLocal(reg::a0, 11);
    b.storeLocal(reg::a1, 15);
    // Pointer-chase a few IR nodes while the frame is live (the walk
    // reads the tree it is visiting).
    b.move(reg::t7, reg::a1);
    ctx.lcgStep(reg::t7, reg::t6);
    ctx.arrayLoad(reg::t5, reg::t7, heapBase, heapMask >> 2, reg::t6);
    b.add(reg::t7, reg::t7, reg::t5);
    ctx.arrayLoad(reg::t4, reg::t7, heapBase, heapMask >> 2, reg::t6);
    b.add(reg::t7, reg::t7, reg::t4);
    ctx.arrayLoad(reg::t3, reg::t7, heapBase, heapMask >> 2, reg::t6);
    b.addi(reg::t7, reg::t7, 1);
    ctx.arrayLoad(reg::t2, reg::t7, heapBase, heapMask >> 2, reg::t6);
    b.addi(reg::t7, reg::t7, 2);
    ctx.arrayLoad(reg::t1, reg::t7, heapBase, heapMask >> 2, reg::t6);
    b.add(reg::t3, reg::t3, reg::t2);
    b.add(reg::t3, reg::t3, reg::t1);
    // Mark the visited node (heap store).
    ctx.arrayStore(reg::t3, reg::t7, heapBase, heapMask >> 2, reg::t6);
    ctx.computeOps(4);
    b.addi(reg::a0, reg::s0, -1);
    b.sll(reg::a1, reg::s1, 1);
    b.xor_(reg::a1, reg::a1, reg::t3);
    b.jal(walk);
    b.move(reg::s2, reg::v0);
    b.loadLocal(reg::t0, 0);
    b.addi(reg::a0, reg::s0, -1);
    b.xor_(reg::a1, reg::s1, reg::t0);
    b.jal(walk);
    b.add(reg::v0, reg::v0, reg::s2);
    b.loadLocal(reg::t1, 15);
    b.add(reg::v0, reg::v0, reg::t1);
    b.epilogue(walkFrame);

    // ---- pass functions: varied frames, chained calls, heap reads --
    for (int i = 0; i < NumPassFuncs; ++i) {
        b.bind(passes[static_cast<std::size_t>(i)]);
        FrameSpec f;
        // Frame sizes drawn 2..56 words, a couple of giants (gcc's
        // static frames reach hundreds of words).
        if (i % 11 == 10)
            f.localWords = 180;
        else
            f.localWords = 2 + static_cast<int>(ctx.rng.geometric(
                               0, 54, 0.82));
        int nSaved = 1 + static_cast<int>(ctx.rng.below(4));
        for (int s = 0; s < nSaved; ++s)
            f.savedRegs.push_back(
                static_cast<RegId>(reg::s0 + s));
        // Passes chain all the way down (gcc's pass manager nests
        // deeply): together with the recursive walk this swings the
        // stack across ~2.5 KB, which is what makes gcc the paper's
        // worst program for a 2 KB LVC (Fig. 6).
        bool callsNext = i + 1 < NumPassFuncs;
        f.saveRa = callsNext;
        b.prologue(f);
        b.storeLocal(reg::a0, 0);
        // Pointer-chase several IR nodes (passes are read-dominated).
        b.move(reg::t7, reg::a0);
        ctx.lcgStep(reg::t7, reg::t6);
        ctx.arrayLoad(reg::t5, reg::t7, heapBase, heapMask >> 2,
                      reg::t6);
        b.add(reg::t7, reg::t7, reg::t5);
        ctx.arrayLoad(reg::t4, reg::t7, heapBase, heapMask >> 2,
                      reg::t6);
        b.add(reg::t7, reg::t7, reg::t4);
        ctx.arrayLoad(reg::t3, reg::t7, heapBase, heapMask >> 2,
                      reg::t6);
        b.addi(reg::t7, reg::t7, 3);
        ctx.arrayLoad(reg::t2, reg::t7, heapBase, heapMask >> 2,
                      reg::t6);
        b.add(reg::t4, reg::t4, reg::t3);
        b.add(reg::t4, reg::t4, reg::t2);
        ctx.computeOps(3 + static_cast<int>(ctx.rng.below(5)));
        // Touch a couple more frame slots.
        int far = f.localWords - 1;
        b.storeLocal(reg::t4, far);
        b.loadLocal(reg::t0, 0);
        b.add(reg::v0, reg::t4, reg::t0);
        if (callsNext) {
            b.move(reg::a0, reg::v0);
            b.jal(passes[static_cast<std::size_t>(i + 1)]);
            b.loadLocal(reg::t1, far);
            b.add(reg::v0, reg::v0, reg::t1);
        }
        b.epilogue(f);
    }

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
