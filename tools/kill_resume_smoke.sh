#!/bin/sh
# Kill/resume smoke test for the atomic observability-write discipline
# and the sweep farm's resume guarantee.
#
# Every observability artifact (run manifest, sweep manifest, samples,
# pipeline trace, black box) is written to "<path>.tmp" and renamed
# into place only when complete, so a process killed at ANY instant
# must leave each final path either absent or fully valid — never
# torn. This script SIGKILLs instrumented runs mid-flight at several
# offsets, checks that invariant, then re-runs to completion ("resume")
# and validates the published artifacts. Phase 4 does the same to a
# whole ddsweep farm: SIGKILL the supervisor and its workers mid-grid,
# resume the spool, and demand the merged manifest match an
# uninterrupted serial reference byte-for-byte (docs/FARM.md).
#
# Usage: kill_resume_smoke.sh <build-dir> [workdir]
# Exits non-zero on the first violation.

set -eu

BUILD=${1:?usage: kill_resume_smoke.sh <build-dir> [workdir]}
WORK=${2:-$(mktemp -d)}
SRC=$(dirname "$0")/..
QUICKSTART="$BUILD/examples/quickstart"
BENCH="$BUILD/bench/bench_fig5_ports"
GRIDBENCH="$BUILD/bench/bench_fig7_nm"
DDTRACE="$BUILD/tools/ddtrace"
DDSWEEP="$BUILD/tools/ddsweep"
VALIDATE="$SRC/tools/validate_manifest.py"

fail() {
    echo "kill_resume_smoke: FAIL: $*" >&2
    exit 1
}

# If a final-name artifact exists, it must be complete and valid; a
# leftover "<path>.tmp" is the expected trace of a mid-write kill.
check_artifact() {
    path=$1
    kind=$2
    [ -e "$path" ] || return 0
    case $kind in
      json) python3 "$VALIDATE" "$path" \
                || fail "$path published but invalid" ;;
      trace) "$DDTRACE" "$path" --counts > /dev/null \
                || fail "$path published but undecodable" ;;
    esac
}

run_and_kill() {
    delay=$1
    shift
    "$@" > /dev/null 2>&1 &
    pid=$!
    sleep "$delay"
    kill -9 "$pid" 2> /dev/null || true # may have finished already
    wait "$pid" 2> /dev/null || true
}

echo "kill_resume_smoke: workdir $WORK"
mkdir -p "$WORK"
cd "$WORK"

# --- Phase 1: kill an instrumented single run at varied offsets -----
for delay in 0.2 0.5 1.0; do
    rm -f run.json run.trace run.samples.json bb.json
    run_and_kill "$delay" "$QUICKSTART" --workload=gcc --scale=3 \
        --manifest=run.json --trace=run.trace \
        --sample=run.samples.json --blackbox=bb.json
    check_artifact run.json json
    check_artifact bb.json json
    check_artifact run.trace trace
    echo "  single run killed at ${delay}s: no torn artifacts"
done

# --- Phase 2: kill a sweep while its manifest is in flight ----------
for delay in 0.3 0.8; do
    rm -f sweep.json
    run_and_kill "$delay" "$BENCH" --programs=li,gcc,compress \
        --scale=0.5 --manifest=sweep.json
    check_artifact sweep.json json
    echo "  sweep killed at ${delay}s: no torn artifacts"
done

# --- Phase 3: resume — the same commands run to completion ----------
rm -f run.json run.trace run.samples.json bb.json sweep.json
"$QUICKSTART" --workload=gcc --scale=1 --manifest=run.json \
    --trace=run.trace --sample=run.samples.json > /dev/null
"$BENCH" --programs=li,compress --scale=0.2 \
    --manifest=sweep.json > /dev/null
[ -e run.json ] || fail "resume did not publish run.json"
[ -e sweep.json ] || fail "resume did not publish sweep.json"
python3 "$VALIDATE" run.json sweep.json
"$DDTRACE" run.trace --counts > /dev/null \
    || fail "resumed trace undecodable"
[ -e run.json.tmp ] && fail "stale run.json.tmp after clean finish"
[ -e sweep.json.tmp ] && fail "stale sweep.json.tmp after clean finish"

# --- Phase 4: SIGKILL a whole sweep farm, resume the spool ----------
# The farm's contract (docs/FARM.md): every spool artifact is written
# atomically, so killing the supervisor and all its workers at any
# instant leaves a spool that `ddsweep resume` completes by re-running
# only the missing points — and the merged manifest comes out
# byte-identical to an uninterrupted single-process reference.
rm -rf spool grid.json ref.json
"$GRIDBENCH" --programs=li,compress --scale=0.2 \
    --emit-grid=grid.json > /dev/null
python3 "$VALIDATE" grid.json
"$DDSWEEP" serial --grid=grid.json --merged=ref.json > /dev/null

# Run the farm in its own process group and SIGKILL the whole group
# (supervisor + both workers) mid-grid.
setsid "$DDSWEEP" run --grid=grid.json --spool=spool --workers=2 \
    > /dev/null 2>&1 &
pid=$!
sleep 1.5
kill -9 "-$pid" 2> /dev/null || true # group may have finished already
wait "$pid" 2> /dev/null || true

"$DDSWEEP" resume --spool=spool --merged=spool/merged.json \
    --farm=spool/farm.json > /dev/null
cmp grid.json spool/grid.json \
    || fail "spooled grid drifted from the emitted spec"
cmp ref.json spool/merged.json \
    || fail "resumed farm manifest differs from serial reference"
python3 "$VALIDATE" spool/merged.json spool/farm.json
echo "  farm killed mid-grid: resume converged on reference bytes"

echo "kill_resume_smoke: PASS"
