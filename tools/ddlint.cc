/**
 * @file
 * ddlint — static analyzer CLI over MISA programs.
 *
 * Usage:
 *   ddlint --workload=<name>|all [--scale=N] [--seed=N]
 *   ddlint file.s [file2.s ...]
 *   common flags: --format=text|json  --verbose
 *
 * Analyzes each program (CFG + sp-tracking dataflow), prints the
 * report per program, and exits non-zero if any program produced an
 * error-severity diagnostic. Workloads are generated at their
 * registry default scale unless --scale is given.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/report.hh"
#include "config/cli.hh"
#include "prog/asm_parser.hh"
#include "util/log.hh"
#include "workloads/common.hh"

using namespace ddsim;

namespace {

struct Totals
{
    std::size_t programs = 0;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    /** JSON mode collects everything into one ddsim-lint-v1 doc. */
    std::vector<analysis::AnalysisResult> collected;
};

void
emit(analysis::AnalysisResult res, const std::string &fmt,
     bool verbose, Totals &totals)
{
    ++totals.programs;
    totals.errors += res.errors();
    totals.warnings += res.warnings();
    if (fmt == "json")
        totals.collected.push_back(std::move(res));
    else
        std::fputs(analysis::textReport(res, verbose).c_str(),
                   stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    config::CliArgs args(argc, argv);
    std::string fmt = args.get("format", "text");
    if (fmt != "text" && fmt != "json") {
        std::fprintf(stderr,
                     "ddlint: unknown --format '%s' "
                     "(expected text or json)\n",
                     fmt.c_str());
        return 2;
    }
    bool verbose = args.getBool("verbose");
    std::string workload = args.get("workload");
    args.markKnown("scale");
    args.markKnown("seed"); // queried per-workload, below
    args.rejectUnknown();
    if (workload.empty() && args.positional().empty()) {
        std::fprintf(stderr,
                     "usage: ddlint --workload=<name>|all | file.s...\n"
                     "       [--format=text|json] [--scale=N] "
                     "[--seed=N] [--verbose]\n");
        return 2;
    }

    Totals totals;

    if (!workload.empty()) {
        std::vector<const workloads::WorkloadInfo *> selected;
        if (workload == "all") {
            for (const auto &info : workloads::all())
                selected.push_back(&info);
        } else {
            const auto *info = workloads::find(workload);
            if (info == nullptr) {
                std::fprintf(stderr,
                             "ddlint: unknown workload '%s'\n",
                             workload.c_str());
                return 2;
            }
            selected.push_back(info);
        }
        for (const auto *info : selected) {
            workloads::WorkloadParams params;
            params.scale = static_cast<std::uint64_t>(
                args.getInt("scale",
                            static_cast<std::int64_t>(
                                info->defaultScale)));
            params.seed = static_cast<std::uint64_t>(
                args.getInt("seed", 0x5eed));
            emit(analysis::analyze(info->factory(params)), fmt,
                 verbose, totals);
        }
    }

    for (const std::string &path : args.positional()) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "ddlint: cannot open '%s'\n",
                         path.c_str());
            return 2;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        // A parse error is an expected lint outcome, not a crash:
        // report the (line-numbered) message and keep going.
        try {
            emit(analysis::analyze(prog::assemble(ss.str(), path)),
                 fmt, verbose, totals);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "ddlint: %s: %s\n", path.c_str(),
                         e.what());
            ++totals.programs;
            ++totals.errors;
        }
    }

    if (fmt == "json")
        std::fputs(analysis::jsonDocument(totals.collected).c_str(),
                   stdout);
    else
        std::printf("ddlint: %zu program(s), %zu error(s), "
                    "%zu warning(s)\n",
                    totals.programs, totals.errors, totals.warnings);
    return totals.errors > 0 ? 1 : 0;
}
