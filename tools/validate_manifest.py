#!/usr/bin/env python3
"""Validate a ddsim run manifest or sweep manifest.

Stdlib-only. Checks schema identifiers, required fields, and internal
consistency (IPC = committed/cycles, per-stream counts are integers,
stat tree shape). Exits non-zero with a message on the first problem.

Usage: validate_manifest.py <manifest.json> [more.json ...]
"""

import json
import sys

RUN_SCHEMA = "ddsim-manifest-v1"
SWEEP_SCHEMA = "ddsim-sweep-manifest-v1"
STATS_SCHEMA = "ddsim-stats-v1"


class Invalid(Exception):
    pass


def need(obj, key, types, where):
    if key not in obj:
        raise Invalid(f"{where}: missing '{key}'")
    if not isinstance(obj[key], types):
        raise Invalid(
            f"{where}.{key}: expected {types}, got {type(obj[key]).__name__}")
    return obj[key]


def check_stat_group(node, where):
    need(node, "name", str, where)
    for stat in need(node, "stats", list, where):
        sname = need(stat, "name", str, f"{where}.stats[]")
        need(stat, "value", (int, float, type(None)),
             f"{where}.stats.{sname}")
        if "buckets" in stat:
            if not all(isinstance(b, int) for b in stat["buckets"]):
                raise Invalid(f"{where}.stats.{sname}: non-integer bucket")
            need(stat, "bucket_width", int, f"{where}.stats.{sname}")
            need(stat, "overflow", int, f"{where}.stats.{sname}")
    for group in need(node, "groups", list, where):
        check_stat_group(group, f"{where}.{group.get('name', '?')}")


def check_run_manifest(doc, where):
    if need(doc, "schema", str, where) != RUN_SCHEMA:
        raise Invalid(f"{where}: schema is {doc['schema']!r}, "
                      f"expected {RUN_SCHEMA!r}")
    gen = need(doc, "generator", dict, where)
    for key in ("name", "version", "git"):
        need(gen, key, str, f"{where}.generator")

    run = need(doc, "run", dict, where)
    need(run, "workload", str, f"{where}.run")
    cfg = need(run, "config", dict, f"{where}.run")
    need(cfg, "notation", str, f"{where}.run.config")
    for cache in ("l1",):
        geom = need(cfg, cache, dict, f"{where}.run.config")
        for key in ("size_bytes", "assoc", "line_bytes", "hit_latency",
                    "ports"):
            need(geom, key, int, f"{where}.run.config.{cache}")
    need(run, "wall_seconds", (int, float), f"{where}.run")

    res = need(doc, "result", dict, where)
    cycles = need(res, "cycles", int, f"{where}.result")
    committed = need(res, "committed", int, f"{where}.result")
    ipc = need(res, "ipc", (int, float), f"{where}.result")
    if cycles > 0 and abs(ipc - committed / cycles) > 1e-6:
        raise Invalid(f"{where}.result: ipc {ipc} != committed/cycles "
                      f"{committed / cycles}")
    streams = need(res, "streams", dict, f"{where}.result")
    for stream in ("lsq", "lvaq"):
        s = need(streams, stream, dict, f"{where}.result.streams")
        for key in ("loads", "stores"):
            if need(s, key, int, f"{where}.result.streams.{stream}") < 0:
                raise Invalid(f"{where}: negative {stream}.{key}")

    stats = doc.get("stats")
    if stats is not None:
        check_stat_group(stats, f"{where}.stats")


def check_sweep_manifest(doc, where):
    gen = need(doc, "generator", dict, where)
    for key in ("name", "version", "git"):
        need(gen, key, str, f"{where}.generator")
    runs = need(doc, "runs", list, where)
    if need(doc, "num_runs", int, where) != len(runs):
        raise Invalid(f"{where}: num_runs {doc['num_runs']} != "
                      f"len(runs) {len(runs)}")
    checked = 0
    for i, run in enumerate(runs):
        if run is None:
            continue  # grid point that didn't capture a manifest
        check_run_manifest(run, f"{where}.runs[{i}]")
        checked += 1
    return checked


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            return 1
        try:
            schema = doc.get("schema")
            if schema == SWEEP_SCHEMA:
                n = check_sweep_manifest(doc, "sweep")
                print(f"{path}: OK ({n} run manifests in a sweep of "
                      f"{doc['num_runs']})")
            elif schema == RUN_SCHEMA:
                check_run_manifest(doc, "run")
                print(f"{path}: OK (run manifest, workload "
                      f"{doc['run']['workload']!r})")
            else:
                raise Invalid(f"unknown schema {schema!r}")
        except Invalid as e:
            print(f"{path}: INVALID: {e}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
