#!/usr/bin/env python3
"""Validate a ddsim run manifest, sweep manifest, grid spec, farm
manifest, spooled job spec / result record / claim lease, crash black
box, or ddlint verdict export.

Stdlib-only. Checks schema identifiers, required fields, and internal
consistency (IPC = committed/cycles, per-stream counts are integers,
stat tree shape, degraded-sweep job tables, black-box error reports,
dense grid-spec job ids, engine selectors and sampled-engine plans /
error-bar blocks, farm shard provenance covering every job id exactly
once, lint verdict enums and mix totals vs the per-program verdict
arrays). CRC-sealed spool artifacts (ddsim-job-v2,
ddsim-job-result-v2) additionally have their seal recomputed from the
raw bytes, so a bit flip anywhere in the payload is flagged even when
the damaged document still parses as JSON. Exits non-zero with a
message on the first problem.

Usage: validate_manifest.py <manifest.json> [more.json ...]
"""

import binascii
import json
import sys

RUN_SCHEMA = "ddsim-manifest-v1"
SWEEP_SCHEMA = "ddsim-sweep-manifest-v1"
STATS_SCHEMA = "ddsim-stats-v1"
BLACKBOX_SCHEMA = "ddsim-blackbox-v1"
GRID_SCHEMA = "ddsim-grid-v1"
FARM_SCHEMA = "ddsim-farm-manifest-v1"
LINT_SCHEMA = "ddsim-lint-v1"
JOB_SCHEMA = "ddsim-job-v2"
JOB_RESULT_SCHEMA = "ddsim-job-result-v2"
CLAIM_SCHEMA = "ddsim-claim-v1"

JOB_STATUSES = ("ok", "recovered", "quarantined")
VERDICTS = ("local", "nonlocal", "ambiguous")
SEVERITIES = ("error", "warning", "note")
ANNOTATE_POLICIES = ("safe", "speculative", "hybrid")
# What a grid spec may request (batched lowers to replay per lane;
# auto is the implicit default and never written).
GRID_ENGINES = ("auto", "live", "replay", "batched", "sampled")
# What a run manifest records actually drove the run.
RUN_ENGINES = ("live", "replay", "sampled")
# Provenance tags an external-trace run may carry (see docs/TRACES.md).
TRACE_FORMATS = ("xtrace", "text", "workload")


class Invalid(Exception):
    pass


def need(obj, key, types, where):
    if key not in obj:
        raise Invalid(f"{where}: missing '{key}'")
    if not isinstance(obj[key], types):
        raise Invalid(
            f"{where}.{key}: expected {types}, got {type(obj[key]).__name__}")
    return obj[key]


def check_stat_group(node, where):
    need(node, "name", str, where)
    for stat in need(node, "stats", list, where):
        sname = need(stat, "name", str, f"{where}.stats[]")
        need(stat, "value", (int, float, type(None)),
             f"{where}.stats.{sname}")
        if "buckets" in stat:
            if not all(isinstance(b, int) for b in stat["buckets"]):
                raise Invalid(f"{where}.stats.{sname}: non-integer bucket")
            need(stat, "bucket_width", int, f"{where}.stats.{sname}")
            need(stat, "overflow", int, f"{where}.stats.{sname}")
    for group in need(node, "groups", list, where):
        check_stat_group(group, f"{where}.{group.get('name', '?')}")


def check_run_manifest(doc, where):
    if need(doc, "schema", str, where) != RUN_SCHEMA:
        raise Invalid(f"{where}: schema is {doc['schema']!r}, "
                      f"expected {RUN_SCHEMA!r}")
    gen = need(doc, "generator", dict, where)
    for key in ("name", "version", "git"):
        need(gen, key, str, f"{where}.generator")

    run = need(doc, "run", dict, where)
    need(run, "workload", str, f"{where}.run")
    cfg = need(run, "config", dict, f"{where}.run")
    need(cfg, "notation", str, f"{where}.run.config")
    for cache in ("l1",):
        geom = need(cfg, cache, dict, f"{where}.run.config")
        for key in ("size_bytes", "assoc", "line_bytes", "hit_latency",
                    "ports"):
            need(geom, key, int, f"{where}.run.config.{cache}")
    need(run, "wall_seconds", (int, float), f"{where}.run")
    engine = None
    opts = run.get("options")
    if opts is not None:
        engine = need(opts, "engine", str, f"{where}.run.options")
        if engine not in RUN_ENGINES:
            raise Invalid(f"{where}.run.options.engine: unknown "
                          f"engine {engine!r}")

    # External-trace provenance: present only for runs driven by an
    # ingested trace, which has nothing the live engine could execute.
    trace_source = run.get("trace_source")
    if trace_source is not None:
        tw = f"{where}.run.trace_source"
        fmt = need(trace_source, "format", str, tw)
        if fmt not in TRACE_FORMATS:
            raise Invalid(f"{tw}.format: unknown format {fmt!r}")
        need(trace_source, "path", str, tw)
        if need(trace_source, "insts", int, tw) < 1:
            raise Invalid(f"{tw}: insts {trace_source['insts']} < 1")
        need(trace_source, "hints_valid", bool, tw)
        if engine == "live":
            raise Invalid(f"{where}: live engine on an external-trace "
                          f"run")

    res = need(doc, "result", dict, where)
    cycles = need(res, "cycles", int, f"{where}.result")
    committed = need(res, "committed", int, f"{where}.result")
    ipc = need(res, "ipc", (int, float), f"{where}.result")
    if cycles > 0 and abs(ipc - committed / cycles) > 1e-6:
        raise Invalid(f"{where}.result: ipc {ipc} != committed/cycles "
                      f"{committed / cycles}")
    streams = need(res, "streams", dict, f"{where}.result")
    for stream in ("lsq", "lvaq"):
        s = need(streams, stream, dict, f"{where}.result.streams")
        for key in ("loads", "stores"):
            if need(s, key, int, f"{where}.result.streams.{stream}") < 0:
                raise Invalid(f"{where}: negative {stream}.{key}")

    # The sampled engine's error-bar block: present exactly when the
    # run records engine "sampled", with a self-consistent plan.
    sampling = res.get("sampling")
    if sampling is not None:
        sw = f"{where}.result.sampling"
        period = need(sampling, "period", int, sw)
        detail = need(sampling, "detail", int, sw)
        warmup = need(sampling, "warmup", int, sw)
        if period < 1 or detail < 1:
            raise Invalid(f"{sw}: period {period} / detail {detail} "
                          f"must be >= 1")
        if warmup + detail > period:
            raise Invalid(f"{sw}: warmup {warmup} + detail {detail} "
                          f"exceed period {period}")
        windows = need(sampling, "windows", int, sw)
        if windows < 0:
            raise Invalid(f"{sw}: negative windows")
        for key in ("detail_insts", "detail_cycles"):
            if need(sampling, key, int, sw) < 0:
                raise Invalid(f"{sw}: negative {key}")
        # A confidence interval needs a sample variance, which needs
        # at least two windows: ipc_ci95 is present exactly then.
        if windows >= 2:
            if need(sampling, "ipc_ci95", (int, float), sw) < 0:
                raise Invalid(f"{sw}: negative ipc_ci95")
        elif "ipc_ci95" in sampling:
            raise Invalid(f"{sw}: ipc_ci95 with only {windows} "
                          f"window(s) (needs >= 2 for a variance)")
    if engine is not None and (engine == "sampled") != \
            (sampling is not None):
        raise Invalid(f"{where}: engine {engine!r} disagrees with the "
                      f"presence of result.sampling")

    stats = doc.get("stats")
    if stats is not None:
        check_stat_group(stats, f"{where}.stats")


def check_error(err, where):
    need(err, "kind", str, where)
    need(err, "message", str, where)
    need(err, "transient", bool, where)


def check_job_table(doc, where):
    """Fault-isolated sweeps carry a per-job status table; its counts
    must agree with the "degraded" flag and the runs array."""
    jobs = need(doc, "jobs", list, where)
    if len(jobs) != len(doc["runs"]):
        raise Invalid(f"{where}: {len(jobs)} jobs for "
                      f"{len(doc['runs'])} runs")
    quarantined = recovered = 0
    for i, job in enumerate(jobs):
        jw = f"{where}.jobs[{i}]"
        if need(job, "index", int, jw) != i:
            raise Invalid(f"{jw}: index {job['index']} != position {i}")
        status = need(job, "status", str, jw)
        if status not in JOB_STATUSES:
            raise Invalid(f"{jw}: unknown status {status!r}")
        attempts = need(job, "attempts", int, jw)
        if attempts < 1:
            raise Invalid(f"{jw}: attempts {attempts} < 1")
        err = need(job, "error", (dict, type(None)), jw)
        if status == "ok":
            if err is not None:
                raise Invalid(f"{jw}: ok job carries an error")
        else:
            if err is None:
                raise Invalid(f"{jw}: {status} job without an error")
            check_error(err, f"{jw}.error")
        if status == "quarantined":
            quarantined += 1
            if doc["runs"][i] is not None:
                raise Invalid(f"{jw}: quarantined but runs[{i}] holds "
                              f"a manifest")
        if status == "recovered":
            recovered += 1
    if need(doc, "num_quarantined", int, where) != quarantined:
        raise Invalid(f"{where}: num_quarantined "
                      f"{doc['num_quarantined']} != {quarantined} "
                      f"quarantined jobs")
    if need(doc, "num_recovered", int, where) != recovered:
        raise Invalid(f"{where}: num_recovered {doc['num_recovered']} "
                      f"!= {recovered} recovered jobs")
    if need(doc, "degraded", bool, where) != (quarantined > 0):
        raise Invalid(f"{where}: degraded flag disagrees with "
                      f"{quarantined} quarantined jobs")


def check_sweep_manifest(doc, where):
    gen = need(doc, "generator", dict, where)
    for key in ("name", "version", "git"):
        need(gen, key, str, f"{where}.generator")
    runs = need(doc, "runs", list, where)
    if need(doc, "num_runs", int, where) != len(runs):
        raise Invalid(f"{where}: num_runs {doc['num_runs']} != "
                      f"len(runs) {len(runs)}")
    if "jobs" in doc or "degraded" in doc:
        check_job_table(doc, where)
    checked = 0
    for i, run in enumerate(runs):
        if run is None:
            continue  # grid point that didn't capture a manifest
        check_run_manifest(run, f"{where}.runs[{i}]")
        checked += 1
    return checked


def check_grid_job(job, jw, expect_id=None):
    """One grid-job object, as embedded in a ddsim-grid-v1 spec or a
    spooled ddsim-job-v2 document."""
    jid = need(job, "id", int, jw)
    if expect_id is not None and jid != expect_id:
        raise Invalid(f"{jw}: id {jid} != position {expect_id} "
                      f"(ids must be dense and ordered)")
    if jid < 0:
        raise Invalid(f"{jw}: negative id")
    if not need(job, "workload", str, jw):
        raise Invalid(f"{jw}: empty workload")
    if need(job, "scale", int, jw) < 1:
        raise Invalid(f"{jw}: scale {job['scale']} < 1")
    need(job, "seed", int, jw)
    for key in ("max_insts", "warmup_insts"):
        if need(job, key, int, jw) < 0:
            raise Invalid(f"{jw}: negative {key}")
    # Optional static-partitioning pass; absent = stock program.
    if "annotate" in job:
        annotate = need(job, "annotate", str, jw)
        if annotate not in ANNOTATE_POLICIES:
            raise Invalid(f"{jw}: unknown annotate policy "
                          f"{annotate!r}")
    # Optional external-trace point: the program comes from the
    # file, hints were burned at conversion time, and there is
    # nothing for the live engine to execute.
    if "trace_path" in job:
        if not need(job, "trace_path", str, jw):
            raise Invalid(f"{jw}: empty trace_path")
        if "annotate" in job:
            raise Invalid(f"{jw}: trace_path combined with an "
                          f"annotate policy")
        if job.get("engine") == "live":
            raise Invalid(f"{jw}: live engine on an "
                          f"external-trace point")
    # Optional engine selector; absent = auto. A sampled point
    # must carry its plan (and no whole-run warmup); no other
    # engine may.
    engine = None
    if "engine" in job:
        engine = need(job, "engine", str, jw)
        if engine not in GRID_ENGINES:
            raise Invalid(f"{jw}: unknown engine {engine!r}")
    if "sampling" in job:
        if engine != "sampled":
            raise Invalid(f"{jw}: sampling plan on engine "
                          f"{engine!r} (only 'sampled' takes one)")
        s = need(job, "sampling", dict, jw)
        sjw = f"{jw}.sampling"
        period = need(s, "period", int, sjw)
        detail = need(s, "detail", int, sjw)
        warmup = need(s, "warmup", int, sjw)
        if period < 1 or detail < 1:
            raise Invalid(f"{sjw}: period {period} / detail "
                          f"{detail} must be >= 1")
        if warmup + detail > period:
            raise Invalid(f"{sjw}: warmup {warmup} + detail "
                          f"{detail} exceed period {period}")
    elif engine == "sampled":
        raise Invalid(f"{jw}: engine 'sampled' without a "
                      f"sampling plan")
    if engine == "sampled" and job["warmup_insts"] != 0:
        raise Invalid(f"{jw}: sampled engine combined with a "
                      f"whole-run warmup")
    cfg = need(job, "config", dict, jw)
    if not need(cfg, "notation", str, f"{jw}.config"):
        raise Invalid(f"{jw}.config: empty notation")


def check_grid_spec(doc, where):
    """A ddsim-grid-v1 spec: dense ids 0..n-1 in order, each job
    carrying a workload, resolved generator parameters, and a machine
    config with its notation."""
    need(doc, "title", str, where)
    jobs = need(doc, "jobs", list, where)
    if not jobs:
        raise Invalid(f"{where}: empty grid")
    if need(doc, "num_jobs", int, where) != len(jobs):
        raise Invalid(f"{where}: num_jobs {doc['num_jobs']} != "
                      f"len(jobs) {len(jobs)}")
    for i, job in enumerate(jobs):
        check_grid_job(job, f"{where}.jobs[{i}]", expect_id=i)
    return len(jobs)


def crc_payload(raw, payload_key, where):
    """Byte range of the '"<key>": {...}' payload, mirroring the C++
    writer: the payload is the wrapper's last member, so its closing
    brace is the second-to-last '}' of the document."""
    marker = f'"{payload_key}": '
    pos = raw.find(marker)
    if pos < 0:
        raise Invalid(f"{where}: no {payload_key!r} payload")
    begin = pos + len(marker)
    if begin >= len(raw) or raw[begin] != "{":
        raise Invalid(f"{where}: {payload_key!r} payload is not an "
                      f"object")
    outer = raw.rfind("}")
    inner = raw.rfind("}", 0, outer) if outer > 0 else -1
    if inner < begin:
        raise Invalid(f"{where}: truncated {payload_key!r} payload")
    return raw[begin:inner + 1]


def check_crc_seal(raw, payload_key, where):
    """Recompute the artifact's CRC32 seal from its raw bytes. The
    first '"crc32": "' in the document is the seal (the record's
    manifest_crc32 key cannot match: it is preceded by '_')."""
    payload = crc_payload(raw, payload_key, where)
    marker = '"crc32": "'
    pos = raw.find(marker)
    if pos < 0 or pos + len(marker) + 8 > len(raw):
        raise Invalid(f"{where}: no crc32 seal")
    stated = raw[pos + len(marker):pos + len(marker) + 8]
    actual = f"{binascii.crc32(payload.encode()) & 0xffffffff:08x}"
    if stated != actual:
        raise Invalid(f"{where}: crc32 seal {stated!r} does not match "
                      f"the payload ({actual!r}) — the artifact is "
                      f"corrupt")


def is_crc_hex(value):
    return (isinstance(value, str) and len(value) == 8
            and all(c in "0123456789abcdef" for c in value))


def check_job_v2(doc, raw, where):
    """A spooled ddsim-job-v2 spec: a CRC-sealed grid job."""
    check_crc_seal(raw, "job", where)
    check_grid_job(need(doc, "job", dict, where), f"{where}.job")


def check_job_result_v2(doc, raw, where, path=None):
    """A spooled ddsim-job-result-v2 record: CRC-sealed bookkeeping
    for one executed point, carrying the CRC its sibling manifest must
    hash to. When the sibling is on disk next to @p path, its bytes
    are verified too."""
    check_crc_seal(raw, "record", where)
    rec = need(doc, "record", dict, where)
    rw = f"{where}.record"
    if need(rec, "id", int, rw) < 0:
        raise Invalid(f"{rw}: negative id")
    status = need(rec, "status", str, rw)
    if status not in JOB_STATUSES:
        raise Invalid(f"{rw}: unknown status {status!r}")
    if need(rec, "attempts", int, rw) < 1:
        raise Invalid(f"{rw}: attempts {rec['attempts']} < 1")
    err = need(rec, "error", (dict, type(None)), rw)
    if status == "ok":
        if err is not None:
            raise Invalid(f"{rw}: ok record carries an error")
    elif err is None:
        raise Invalid(f"{rw}: {status} record without an error")
    else:
        check_error(err, f"{rw}.error")
    if not need(rec, "worker", str, rw):
        raise Invalid(f"{rw}: empty worker")
    need(rec, "shard", int, rw)
    need(rec, "wall_seconds", (int, float), rw)
    mcrc = need(rec, "manifest_crc32", (str, type(None)), rw)
    if status == "quarantined":
        if mcrc is not None:
            raise Invalid(f"{rw}: quarantined record promises a "
                          f"manifest")
    elif not is_crc_hex(mcrc):
        raise Invalid(f"{rw}: manifest_crc32 {mcrc!r} is not 8 hex "
                      f"digits")
    if mcrc is not None and path is not None \
            and path.endswith(".json"):
        sibling = path[:-len(".json")] + ".manifest.json"
        try:
            with open(sibling, "rb") as f:
                bytes_ = f.read()
        except OSError:
            return  # validated standalone; the spool may be elsewhere
        actual = f"{binascii.crc32(bytes_) & 0xffffffff:08x}"
        if actual != mcrc:
            raise Invalid(f"{rw}: sibling manifest {sibling!r} hashes "
                          f"to {actual!r}, record promises {mcrc!r} "
                          f"(manifest is corrupt)")


def check_claim_v1(doc, where):
    """A ddsim-claim-v1 lease document (lives in claims/ while a
    worker holds the point)."""
    if need(doc, "id", int, where) < 0:
        raise Invalid(f"{where}: negative id")
    if need(doc, "shard", int, where) < 0:
        raise Invalid(f"{where}: negative shard")
    if not need(doc, "worker", str, where):
        raise Invalid(f"{where}: empty worker")
    if need(doc, "pid", int, where) < 1:
        raise Invalid(f"{where}: pid {doc['pid']} < 1")
    if need(doc, "acquired_unix", int, where) < 0:
        raise Invalid(f"{where}: negative acquired_unix")
    if not is_crc_hex(need(doc, "job_crc32", str, where)):
        raise Invalid(f"{where}: job_crc32 {doc['job_crc32']!r} is "
                      f"not 8 hex digits")


def check_farm_manifest(doc, where):
    """A ddsim-farm-manifest-v1 provenance document: every grid job id
    appears in exactly one shard, attributed to a known worker, with a
    valid status (and an error when the status demands one)."""
    need(doc, "title", str, where)
    gen = need(doc, "generator", dict, where)
    for key in ("name", "version", "git"):
        need(gen, key, str, f"{where}.generator")
    num_jobs = need(doc, "num_jobs", int, where)
    workers = need(doc, "workers", list, where)
    if not all(isinstance(w, str) and w for w in workers):
        raise Invalid(f"{where}.workers: non-string or empty worker id")

    seen = {}
    for s, shard in enumerate(need(doc, "shards", list, where)):
        sw = f"{where}.shards[{s}]"
        if need(shard, "shard", int, sw) != s:
            raise Invalid(f"{sw}: shard {shard['shard']} != "
                          f"position {s}")
        jobs = need(shard, "jobs", list, sw)
        if need(shard, "num_jobs", int, sw) != len(jobs):
            raise Invalid(f"{sw}: num_jobs {shard['num_jobs']} != "
                          f"len(jobs) {len(jobs)}")
        for j, job in enumerate(jobs):
            jw = f"{sw}.jobs[{j}]"
            jid = need(job, "id", int, jw)
            if jid in seen:
                raise Invalid(f"{jw}: job id {jid} already reported "
                              f"by shard {seen[jid]}")
            seen[jid] = s
            worker = need(job, "worker", str, jw)
            if worker not in workers:
                raise Invalid(f"{jw}: worker {worker!r} not in the "
                              f"workers list")
            status = need(job, "status", str, jw)
            if status not in JOB_STATUSES:
                raise Invalid(f"{jw}: unknown status {status!r}")
            if need(job, "attempts", int, jw) < 1:
                raise Invalid(f"{jw}: attempts {job['attempts']} < 1")
            need(job, "wall_seconds", (int, float), jw)
            if status == "ok":
                if "error" in job:
                    raise Invalid(f"{jw}: ok job carries an error")
            else:
                check_error(need(job, "error", dict, jw), f"{jw}.error")
    if len(seen) != num_jobs or sorted(seen) != list(range(num_jobs)):
        missing = sorted(set(range(num_jobs)) - set(seen))
        extra = sorted(set(seen) - set(range(num_jobs)))
        raise Invalid(f"{where}: shards must cover job ids "
                      f"0..{num_jobs - 1} exactly once "
                      f"(missing {missing}, unexpected {extra})")
    return num_jobs


def check_lint_program(prog, where):
    """One per-program object of a ddsim-lint-v1 document: verdict
    enum values, dense ordinal ids over strictly increasing
    instruction indices, and load/store mixes that re-total from the
    verdicts array."""
    name = need(prog, "program", str, where)
    if not name:
        raise Invalid(f"{where}: empty program name")
    for key in ("errors", "warnings", "notes"):
        if need(prog, key, int, where) < 0:
            raise Invalid(f"{where}: negative {key}")
    mixes = {}
    for mix in ("loads", "stores"):
        m = need(prog, mix, dict, where)
        for v in VERDICTS:
            if need(m, v, int, f"{where}.{mix}") < 0:
                raise Invalid(f"{where}.{mix}.{v}: negative count")
        mixes[mix] = m

    counted = {mix: dict.fromkeys(VERDICTS, 0)
               for mix in ("loads", "stores")}
    prev_inst = -1
    for i, v in enumerate(need(prog, "verdicts", list, where)):
        vw = f"{where}.verdicts[{i}]"
        if need(v, "id", int, vw) != i:
            raise Invalid(f"{vw}: id {v['id']} != position {i} "
                          f"(ids must be dense and ordered)")
        inst = need(v, "inst", int, vw)
        if inst <= prev_inst:
            raise Invalid(f"{vw}: inst {inst} not strictly "
                          f"increasing (previous {prev_inst})")
        prev_inst = inst
        load = need(v, "load", bool, vw)
        verdict = need(v, "verdict", str, vw)
        if verdict not in VERDICTS:
            raise Invalid(f"{vw}: unknown verdict {verdict!r}")
        need(v, "annotated", bool, vw)
        counted["loads" if load else "stores"][verdict] += 1
    for mix in ("loads", "stores"):
        for v in VERDICTS:
            if mixes[mix][v] != counted[mix][v]:
                raise Invalid(
                    f"{where}.{mix}.{v}: mix says {mixes[mix][v]}, "
                    f"verdicts array totals {counted[mix][v]}")

    sev_counts = dict.fromkeys(SEVERITIES, 0)
    for i, d in enumerate(need(prog, "diagnostics", list, where)):
        dw = f"{where}.diagnostics[{i}]"
        sev = need(d, "severity", str, dw)
        if sev not in SEVERITIES:
            raise Invalid(f"{dw}: unknown severity {sev!r}")
        if not need(d, "id", str, dw):
            raise Invalid(f"{dw}: empty diagnostic id")
        need(d, "inst", int, dw)
        need(d, "message", str, dw)
        sev_counts[sev] += 1
    for sev, key in (("error", "errors"), ("warning", "warnings"),
                     ("note", "notes")):
        if prog[key] != sev_counts[sev]:
            raise Invalid(f"{where}.{key}: says {prog[key]}, "
                          f"diagnostics array holds {sev_counts[sev]}")
    return mixes


def check_lint_document(doc, where):
    """A ddsim-lint-v1 document: generator provenance, well-formed
    per-program objects, and a summary block that is the element-wise
    total of the programs."""
    gen = need(doc, "generator", dict, where)
    for key in ("name", "version", "git"):
        need(gen, key, str, f"{where}.generator")
    totals = {"errors": 0, "warnings": 0, "notes": 0,
              "loads": dict.fromkeys(VERDICTS, 0),
              "stores": dict.fromkeys(VERDICTS, 0)}
    seen = set()
    programs = need(doc, "programs", list, where)
    for i, prog in enumerate(programs):
        pw = f"{where}.programs[{i}]"
        mixes = check_lint_program(prog, pw)
        name = prog["program"]
        if name in seen:
            raise Invalid(f"{pw}: duplicate program {name!r}")
        seen.add(name)
        for key in ("errors", "warnings", "notes"):
            totals[key] += prog[key]
        for mix in ("loads", "stores"):
            for v in VERDICTS:
                totals[mix][v] += mixes[mix][v]

    summary = need(doc, "summary", dict, where)
    if need(summary, "programs", int, f"{where}.summary") \
            != len(programs):
        raise Invalid(f"{where}.summary.programs: says "
                      f"{summary['programs']}, document holds "
                      f"{len(programs)}")
    for key in ("errors", "warnings", "notes"):
        if need(summary, key, int, f"{where}.summary") != totals[key]:
            raise Invalid(f"{where}.summary.{key}: says "
                          f"{summary[key]}, programs total "
                          f"{totals[key]}")
    for mix in ("loads", "stores"):
        m = need(summary, mix, dict, f"{where}.summary")
        for v in VERDICTS:
            if need(m, v, int, f"{where}.summary.{mix}") \
                    != totals[mix][v]:
                raise Invalid(f"{where}.summary.{mix}.{v}: says "
                              f"{m[v]}, programs total "
                              f"{totals[mix][v]}")
    return len(programs)


def check_blackbox(doc, where):
    gen = need(doc, "generator", dict, where)
    for key in ("name", "version", "git"):
        need(gen, key, str, f"{where}.generator")
    run = need(doc, "run", dict, where)
    need(run, "workload", str, f"{where}.run")
    cfg = need(run, "config", dict, f"{where}.run")
    need(cfg, "notation", str, f"{where}.run.config")

    err = need(doc, "error", dict, where)
    check_error(err, f"{where}.error")
    need(err, "context", dict, f"{where}.error")

    pipe = need(doc, "pipeline", dict, where)
    cycle = need(pipe, "cycle", int, f"{where}.pipeline")
    last = need(pipe, "last_commit_cycle", int, f"{where}.pipeline")
    if last > cycle:
        raise Invalid(f"{where}.pipeline: last_commit_cycle {last} "
                      f"after cycle {cycle}")
    for q in ("rob", "lsq"):
        geom = need(pipe, q, dict, f"{where}.pipeline")
        occ = need(geom, "occupancy", int, f"{where}.pipeline.{q}")
        size = need(geom, "size", int, f"{where}.pipeline.{q}")
        if not 0 <= occ <= size:
            raise Invalid(f"{where}.pipeline.{q}: occupancy {occ} "
                          f"outside [0, {size}]")
    commits = need(pipe, "last_commits", list, f"{where}.pipeline")
    prev = -1
    for i, c in enumerate(commits):
        cw = f"{where}.pipeline.last_commits[{i}]"
        seq = need(c, "seq", int, cw)
        need(c, "disasm", str, cw)
        if need(c, "cycle", int, cw) < prev:
            raise Invalid(f"{cw}: commit cycles run backwards")
        prev = c["cycle"]
        del seq

    stats = doc.get("stats")
    if stats is not None:
        check_stat_group(stats, f"{where}.stats")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path) as f:
                raw = f.read()
            doc = json.loads(raw)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            return 1
        try:
            schema = doc.get("schema")
            if schema == SWEEP_SCHEMA:
                n = check_sweep_manifest(doc, "sweep")
                note = " (degraded)" if doc.get("degraded") else ""
                print(f"{path}: OK ({n} run manifests in a sweep of "
                      f"{doc['num_runs']}){note}")
            elif schema == RUN_SCHEMA:
                check_run_manifest(doc, "run")
                print(f"{path}: OK (run manifest, workload "
                      f"{doc['run']['workload']!r})")
            elif schema == BLACKBOX_SCHEMA:
                check_blackbox(doc, "blackbox")
                print(f"{path}: OK (black box, workload "
                      f"{doc['run']['workload']!r}, error "
                      f"{doc['error']['kind']!r})")
            elif schema == GRID_SCHEMA:
                n = check_grid_spec(doc, "grid")
                print(f"{path}: OK (grid spec, {n} jobs, "
                      f"{doc['title']!r})")
            elif schema == FARM_SCHEMA:
                n = check_farm_manifest(doc, "farm")
                print(f"{path}: OK (farm manifest, {n} jobs across "
                      f"{len(doc['shards'])} shards)")
            elif schema == LINT_SCHEMA:
                n = check_lint_document(doc, "lint")
                print(f"{path}: OK (lint export, {n} programs, "
                      f"{doc['summary']['errors']} error(s))")
            elif schema == JOB_SCHEMA:
                check_job_v2(doc, raw, "job")
                print(f"{path}: OK (spooled job {doc['job']['id']}, "
                      f"workload {doc['job']['workload']!r}, "
                      f"CRC seal verified)")
            elif schema == JOB_RESULT_SCHEMA:
                check_job_result_v2(doc, raw, "result", path)
                print(f"{path}: OK (result record for job "
                      f"{doc['record']['id']}, status "
                      f"{doc['record']['status']!r}, CRC seal "
                      f"verified)")
            elif schema == CLAIM_SCHEMA:
                check_claim_v1(doc, "claim")
                print(f"{path}: OK (claim on job {doc['id']} held by "
                      f"{doc['worker']!r}, pid {doc['pid']})")
            else:
                raise Invalid(f"unknown schema {schema!r}")
        except Invalid as e:
            print(f"{path}: INVALID: {e}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
