/**
 * @file
 * ddsweep: the sweep-farm driver. Executes a ddsim-grid-v1 grid (as
 * exported by any figure bench via --emit-grid) across crash-isolated
 * worker processes, with durable spooling, work-stealing, resume and
 * bit-identical merged manifests. See docs/FARM.md.
 *
 * Usage: ddsweep <command> [options]
 *
 * Commands:
 *   spool    --grid=F --spool=DIR [--shards=N]
 *            Persist the grid as a fresh spool directory.
 *   run      --grid=F --spool=DIR [--shards=N] [--workers=N]
 *            Spool (the directory must be fresh), supervise workers
 *            until complete, then merge.
 *   resume   --spool=DIR [--retry-quarantined] [--workers=N]
 *            Requeue incomplete/stranded points of an interrupted
 *            spool, supervise, and merge.
 *   worker   --spool=DIR --worker=ID [--shard=K] [--parent=PID]
 *            [--max-jobs=N] [--lease-secs=S]
 *            Internal: one claim-run loop (the supervisor spawns
 *            these; invoke directly only in tests). Workers heartbeat
 *            their claims when --lease-secs > 0 and drain gracefully
 *            on SIGTERM: the in-flight point completes and persists,
 *            then the process exits 0 with no claim stranded.
 *   merge    --spool=DIR [--merged=F] [--farm=F]
 *            Merge a complete spool without running anything. Every
 *            record and manifest is CRC-verified first; corrupt
 *            artifacts are quarantined into <spool>/corrupt and the
 *            merge refuses to splice them (resume re-runs them).
 *   serial   --grid=F --merged=F [--workers=N]
 *            In-process SweepRunner reference over the same grid: the
 *            document `run` must reproduce byte-for-byte.
 *   status   --spool=DIR
 *            Print progress plus, per in-flight claim, lease age and
 *            heartbeat freshness; exit 0 when complete, 3 when not.
 *
 * Options shared by run/resume/worker/serial:
 *   --attempts=N --backoff-ms=N --max-backoff-ms=N   retry policy
 *   --cycle-budget=N --wall-budget=SECONDS           per-job guards
 *   --trace-cache-mb=N   byte budget for the per-process recorded-
 *     trace cache (LRU eviction; 0 = unlimited)
 *   --inject=SPEC[;SPEC...] --inject-seed=N          fault injection,
 *     SPEC = kind:workload:notation[:arg], kind one of transient,
 *     persistent, alloc, crash, hang, drop-wakeup, corrupt-trace;
 *     empty workload/notation match any.
 * run/resume additionally: --merged=F --farm=F --respawn-limit=N
 *   --crash-quarantine-after=N
 *   --lease-secs=S    claims whose heartbeat goes stale past S are
 *     reclaimed from the (SIGKILLed) wedged worker; default 300, 0
 *     disables. Forwarded to workers as their heartbeat interval.
 *   --job-wall-secs=S quarantine (error kind "hung") any job holding
 *     its claim longer than S; default 0 = no per-job watchdog.
 *   --stall-worker=ID test hook: the named worker SIGSTOPs itself
 *     after its first claim (lease-expiry smoke).
 *   (They forward the shared options to every worker they spawn.)
 */

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "config/cli.hh"
#include "robust/fault_inject.hh"
#include "sim/farm.hh"
#include "sim/grid_spec.hh"
#include "util/error.hh"
#include "util/file_claim.hh"
#include "util/log.hh"
#include "util/str.hh"
#include "util/subprocess.hh"

using namespace ddsim;
using namespace ddsim::sim;

namespace {

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    while (true) {
        std::string::size_type pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

robust::FaultKind
faultKindFromToken(const std::string &token)
{
    using robust::FaultKind;
    if (token == "transient")
        return FaultKind::JobTransient;
    if (token == "persistent")
        return FaultKind::JobPersistent;
    if (token == "alloc")
        return FaultKind::AllocFail;
    if (token == "crash")
        return FaultKind::JobCrash;
    if (token == "hang")
        return FaultKind::JobHang;
    if (token == "drop-wakeup")
        return FaultKind::DropWakeup;
    if (token == "corrupt-trace")
        return FaultKind::CorruptTrace;
    fatal("--inject: unknown fault kind '%s' (expected transient, "
          "persistent, alloc, crash, hang, drop-wakeup or "
          "corrupt-trace)",
          token.c_str());
}

/**
 * Parse --inject / --inject-seed and install the injector for the
 * rest of the process. Held by value in main's scope: destruction
 * deactivates injection.
 */
struct Injection
{
    std::optional<robust::FaultInjector> injector;
    std::optional<robust::ScopedFaultInjection> scope;

    void install(const config::CliArgs &args)
    {
        std::string spec = args.get("inject");
        std::uint64_t seed =
            static_cast<std::uint64_t>(args.getInt("inject-seed", 1));
        if (spec.empty())
            return;
        injector.emplace(seed);
        for (const std::string &one : splitOn(spec, ';')) {
            std::vector<std::string> f = splitOn(one, ':');
            if (f.size() < 3 || f.size() > 4)
                fatal("--inject: spec '%s' is not "
                      "kind:workload:notation[:arg]",
                      one.c_str());
            robust::FaultSpec fs;
            fs.kind = faultKindFromToken(f[0]);
            fs.workload = f[1];
            fs.notation = f[2];
            if (f.size() == 4) {
                std::int64_t arg = 0;
                if (!parseInt(f[3], arg) || arg < 0)
                    fatal("--inject: bad arg '%s' in '%s'",
                          f[3].c_str(), one.c_str());
                fs.arg = static_cast<std::uint64_t>(arg);
            }
            injector->add(std::move(fs));
        }
        scope.emplace(*injector);
    }
};

RetryPolicy
retryFromArgs(const config::CliArgs &args)
{
    RetryPolicy p;
    p.maxAttempts = static_cast<int>(args.getInt("attempts", 3));
    p.backoffMs =
        static_cast<std::uint64_t>(args.getInt("backoff-ms", 10));
    p.maxBackoffMs = static_cast<std::uint64_t>(
        args.getInt("max-backoff-ms", 1000));
    return p;
}

std::string
requireOpt(const config::CliArgs &args, const std::string &key,
           const char *command)
{
    std::string v = args.get(key);
    if (v.empty())
        fatal("ddsweep %s: --%s is required", command, key.c_str());
    return v;
}

/** The shared options run/resume forward verbatim to their workers. */
std::vector<std::string>
forwardedWorkerArgs(const config::CliArgs &args)
{
    std::vector<std::string> out;
    for (const char *key :
         {"attempts", "backoff-ms", "max-backoff-ms", "cycle-budget",
          "wall-budget", "trace-cache-mb", "inject", "inject-seed",
          "stall-worker"}) {
        if (args.has(key))
            out.push_back("--" + std::string(key) + "=" +
                          args.get(key));
    }
    return out;
}

void
printStatus(const farm::SpoolStatus &st)
{
    std::printf("points: total=%zu done=%zu (ok=%zu recovered=%zu "
                "quarantined=%zu) pending=%zu claimed=%zu corrupt=%zu "
                "shards=%d\n",
                st.total, st.done(), st.ok, st.recovered,
                st.quarantined, st.pending, st.claimed, st.corrupt,
                st.shards);
}

/** One line per in-flight claim: who holds the lease and how fresh
 *  its heartbeat is — the first thing to read when a farm stalls. */
void
printLeases(const farm::SpoolStatus &st)
{
    for (const farm::ClaimInfo &ci : st.leases) {
        std::printf("claim: job=%llu shard=%d worker=%s",
                    static_cast<unsigned long long>(ci.id), ci.shard,
                    ci.worker.c_str());
        if (ci.pid)
            std::printf(" pid=%d", static_cast<int>(ci.pid));
        if (ci.heartbeatAge >= 0)
            std::printf(" heartbeat=%.1fs", ci.heartbeatAge);
        else
            std::printf(" heartbeat=?");
        if (ci.jobAge >= 0)
            std::printf(" lease-age=%.1fs", ci.jobAge);
        std::printf("\n");
    }
}

/** Everything run/resume consult, queried up front so rejectUnknown()
 *  can fire before hours of simulation start. */
struct FarmPlan
{
    farm::SupervisorOptions sup;
    std::string merged;
    std::string farmDoc;
};

FarmPlan
farmPlanFromArgs(const config::CliArgs &args, const char *argv0,
                 const std::string &spool)
{
    FarmPlan plan;
    plan.sup.exePath = currentExecutable(argv0);
    plan.sup.workers = static_cast<int>(args.getInt("workers", 2));
    plan.sup.respawnLimit =
        static_cast<int>(args.getInt("respawn-limit", 8));
    plan.sup.crashQuarantineAfter = static_cast<int>(
        args.getInt("crash-quarantine-after", 2));
    plan.sup.leaseSecs = args.getSeconds("lease-secs", 300.0);
    plan.sup.jobWallSecs = args.getSeconds("job-wall-secs", 0.0);
    plan.sup.workerArgs = forwardedWorkerArgs(args);
    plan.merged = args.get("merged", spool + "/merged.json");
    plan.farmDoc = args.get("farm", spool + "/farm.json");
    return plan;
}

/** Supervise an already-prepared spool, then merge and report. If the
 *  merge quarantines corrupt artifacts, requeue and run once more —
 *  corruption is supposed to be re-run, not fatal — but give up after
 *  a few rounds rather than loop on a disk that keeps eating bytes. */
int
superviseAndMerge(const FarmPlan &plan, const std::string &spool)
{
    farm::SpoolStatus st = farm::superviseFarm(spool, plan.sup);
    for (int round = 0;; ++round) {
        try {
            farm::mergeSpool(spool, plan.merged, plan.farmDoc);
            break;
        } catch (const CorruptArtifactError &e) {
            if (round >= 2)
                throw;
            warn("%s; re-running the quarantined points (round %d)",
                 e.what(), round + 1);
            farm::requeueIncomplete(spool, false);
            st = farm::superviseFarm(spool, plan.sup);
        }
    }

    printStatus(st);
    std::printf("merged: %s\nfarm: %s\n", plan.merged.c_str(),
                plan.farmDoc.c_str());
    if (st.quarantined)
        warn("sweep is degraded: %zu of %zu points quarantined",
             st.quarantined, st.total);
    return 0;
}

int
cmdSpool(const config::CliArgs &args)
{
    GridSpec spec =
        GridSpec::fromFile(requireOpt(args, "grid", "spool"));
    std::string spool = requireOpt(args, "spool", "spool");
    int shards = static_cast<int>(args.getInt("shards", 1));
    args.rejectUnknown();
    farm::spoolGrid(spec, spool, shards);
    std::printf("spooled %zu jobs across %d shards into %s\n",
                spec.jobs.size(), shards, spool.c_str());
    return 0;
}

int
cmdRun(const config::CliArgs &args, const char *argv0)
{
    std::string gridPath = requireOpt(args, "grid", "run");
    std::string spool = requireOpt(args, "spool", "run");
    int shards = static_cast<int>(
        args.getInt("shards", args.getInt("workers", 2)));
    FarmPlan plan = farmPlanFromArgs(args, argv0, spool);
    args.rejectUnknown();

    GridSpec spec = GridSpec::fromFile(gridPath);
    farm::spoolGrid(spec, spool, shards);
    return superviseAndMerge(plan, spool);
}

int
cmdResume(const config::CliArgs &args, const char *argv0)
{
    std::string spool = requireOpt(args, "spool", "resume");
    bool retryQuarantined = args.getBool("retry-quarantined");
    FarmPlan plan = farmPlanFromArgs(args, argv0, spool);
    args.rejectUnknown();

    std::size_t requeued =
        farm::requeueIncomplete(spool, retryQuarantined);
    std::printf("requeued %zu points\n", requeued);
    return superviseAndMerge(plan, spool);
}

int
cmdWorker(const config::CliArgs &args)
{
    std::string spool = requireOpt(args, "spool", "worker");
    farm::WorkerOptions opts;
    opts.workerId = args.get("worker", "w0");
    opts.shard = static_cast<int>(args.getInt("shard", -1));
    opts.retry = retryFromArgs(args);
    opts.cycleBudget =
        static_cast<std::uint64_t>(args.getInt("cycle-budget", 0));
    opts.wallBudget = args.getDouble("wall-budget", 0.0);
    opts.traceCacheBytes = args.getMbBytes("trace-cache-mb", 0);
    opts.maxJobs =
        static_cast<std::size_t>(args.getInt("max-jobs", 0));
    opts.exitIfReparented =
        static_cast<pid_t>(args.getInt("parent", 0));
    opts.leaseSecs = args.getSeconds("lease-secs", 0.0);
    opts.gracefulDrain = true;
    opts.stallAfterFirstClaim =
        !args.get("stall-worker").empty() &&
        args.get("stall-worker") == opts.workerId;
    args.rejectUnknown();
    std::size_t done = farm::runWorker(spool, opts);
    std::printf("worker %s: completed %zu jobs\n",
                opts.workerId.c_str(), done);
    return 0;
}

int
cmdMerge(const config::CliArgs &args)
{
    std::string spool = requireOpt(args, "spool", "merge");
    std::string merged = args.get("merged", spool + "/merged.json");
    std::string farmDoc = args.get("farm", spool + "/farm.json");
    args.rejectUnknown();
    farm::mergeSpool(spool, merged, farmDoc);
    std::printf("merged: %s\nfarm: %s\n", merged.c_str(),
                farmDoc.c_str());
    return 0;
}

int
cmdSerial(const config::CliArgs &args)
{
    GridSpec spec =
        GridSpec::fromFile(requireOpt(args, "grid", "serial"));
    std::string merged = requireOpt(args, "merged", "serial");
    unsigned workers =
        static_cast<unsigned>(args.getInt("workers", 0));
    RetryPolicy retry = retryFromArgs(args);
    std::uint64_t cycleBudget =
        static_cast<std::uint64_t>(args.getInt("cycle-budget", 0));
    double wallBudget = args.getDouble("wall-budget", 0.0);
    std::size_t traceCacheBytes =
        args.getMbBytes("trace-cache-mb", 0);
    args.rejectUnknown();
    SweepOutcome out =
        farm::runSerial(spec, workers, retry, cycleBudget, wallBudget,
                        merged, traceCacheBytes);
    std::printf("serial: %zu runs (%zu quarantined) -> %s\n",
                out.results.size(), out.numQuarantined,
                merged.c_str());
    return 0;
}

int
cmdStatus(const config::CliArgs &args)
{
    std::string spool = requireOpt(args, "spool", "status");
    args.rejectUnknown();
    farm::SpoolStatus st = farm::scanSpool(spool);
    std::printf("spool: %s\n", spool.c_str());
    printStatus(st);
    printLeases(st);
    std::printf("complete: %s\n", st.complete() ? "yes" : "no");
    return st.complete() ? 0 : 3;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        config::CliArgs args(argc, argv);
        if (args.positional().size() != 1)
            fatal("usage: ddsweep "
                  "spool|run|resume|worker|merge|serial|status "
                  "[options] (see docs/FARM.md)");
        const std::string &cmd = args.positional()[0];

        // Injection applies to whichever command runs simulations in
        // this process (worker, serial); elsewhere the flags are
        // accepted and forwarded.
        Injection injection;
        injection.install(args);

        if (cmd == "spool")
            return cmdSpool(args);
        if (cmd == "run")
            return cmdRun(args, argv[0]);
        if (cmd == "resume")
            return cmdResume(args, argv[0]);
        if (cmd == "worker")
            return cmdWorker(args);
        if (cmd == "merge")
            return cmdMerge(args);
        if (cmd == "serial")
            return cmdSerial(args);
        if (cmd == "status")
            return cmdStatus(args);
        fatal("ddsweep: unknown command '%s'", cmd.c_str());
    } catch (const std::exception &e) {
        // fatal()/raise() already printed the message; anything else
        // still deserves a line before the nonzero exit.
        std::fprintf(stderr, "ddsweep: failed: %s\n", e.what());
        return 2;
    }
}
