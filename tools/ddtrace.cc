/**
 * @file
 * ddtrace: decode and analyze the binary per-instruction pipeline
 * traces written by obs::PipelineTracer (RunOptions::tracePath).
 *
 * Usage: ddtrace <trace-file> [mode] [filters]
 *
 * Modes (default: header + stall-attribution summary):
 *   --dump           per-record listing (one line per instruction)
 *   --timeline       per-instruction stage timelines in the style of
 *                    the gem5 O3 pipeline viewer
 *   --counts         committed / per-stream counts only, one per line
 *                    (machine-checkable against a run manifest)
 *
 * Filters (apply to --dump and --timeline):
 *   --pc=<idx>       only records with this static instruction index
 *   --stream=lsq|lvaq  only records served by that memory stream
 *   --cycles=LO:HI   only records committing in [LO, HI]
 *   --limit=<n>      stop after n matching records (default 50 for
 *                    --timeline, unlimited otherwise)
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "config/cli.hh"
#include "obs/pipeline_trace.hh"
#include "util/log.hh"
#include "util/str.hh"

using namespace ddsim;

namespace {

struct Filter
{
    bool hasPc = false;
    std::uint32_t pc = 0;
    int stream = -1; // -1 = any, 0 = LSQ, 1 = LVAQ
    std::uint64_t cycleLo = 0;
    std::uint64_t cycleHi = ~std::uint64_t{0};

    bool matches(const obs::TraceRecord &r) const
    {
        if (hasPc && r.pcIdx != pc)
            return false;
        if (stream >= 0 && (r.isLoad || r.isStore) &&
            r.lvaqStream != (stream == 1))
            return false;
        if (stream >= 0 && !r.isLoad && !r.isStore)
            return false; // stream filters imply memory ops only
        if (r.commitCycle < cycleLo || r.commitCycle > cycleHi)
            return false;
        return true;
    }
};

std::string
flagString(const obs::TraceRecord &r)
{
    std::string s;
    if (r.isLoad)
        s += " load";
    if (r.isStore)
        s += " store";
    if (r.isLoad || r.isStore)
        s += r.lvaqStream ? " LVAQ" : " LSQ";
    if (r.replicated)
        s += " repl";
    if (r.forwarded)
        s += " fwd";
    if (r.fastForwarded)
        s += " fastfwd";
    if (r.combined)
        s += " comb";
    if (r.missteered)
        s += " missteer";
    return s;
}

void
printCycle(const char *name, std::uint64_t c)
{
    if (c == obs::kNoCycle)
        std::printf(" %s=?", name);
    else
        std::printf(" %s=%" PRIu64, name, c);
}

void
dumpRecord(const obs::TraceRecord &r)
{
    std::printf("seq %-8" PRIu64 " pc %-6u", r.seq, r.pcIdx);
    printCycle("F", r.fetchCycle);
    printCycle("D", r.dispatchCycle);
    if (r.isLoad || r.isStore)
        printCycle("Q", r.queueCycle);
    printCycle("I", r.issueCycle);
    if (r.isLoad || r.isStore)
        printCycle("A", r.accessCycle);
    printCycle("W", r.wbCycle);
    std::printf(" C=%" PRIu64 "%s\n", r.commitCycle,
                flagString(r).c_str());
}

/**
 * One gem5-O3-viewer-style row: stage letters at their cycle offsets
 * between the first known stage cycle and commit, dots in between.
 */
void
timelineRecord(const obs::TraceRecord &r)
{
    std::uint64_t base = r.commitCycle;
    const std::uint64_t cycles[] = {r.fetchCycle,  r.dispatchCycle,
                                    r.queueCycle,  r.issueCycle,
                                    r.accessCycle, r.wbCycle};
    for (std::uint64_t c : cycles)
        if (c != obs::kNoCycle && c < base)
            base = c;
    std::uint64_t span = r.commitCycle - base + 1;
    // Clip pathological lifetimes so one stuck instruction cannot
    // produce a megabyte-wide row.
    constexpr std::uint64_t kMaxSpan = 120;
    bool clipped = span > kMaxSpan;
    if (clipped)
        span = kMaxSpan;

    std::string row(span, '.');
    auto put = [&](std::uint64_t c, char ch) {
        if (c == obs::kNoCycle || c < base)
            return;
        std::uint64_t off = c - base;
        if (off >= span)
            return;
        // Later stages overwrite earlier ones sharing a cycle; show
        // the furthest progress.
        row[off] = ch;
    };
    put(r.fetchCycle, 'f');
    put(r.dispatchCycle, 'd');
    put(r.queueCycle, 'q');
    put(r.issueCycle, 'i');
    put(r.accessCycle, 'a');
    put(r.wbCycle, 'w');
    if (!clipped)
        row[span - 1] = 'c';

    std::printf("[%s%s]-(%8" PRIu64 " -> %8" PRIu64 ") seq %" PRIu64
                " pc %u%s\n",
                row.c_str(), clipped ? "..." : "", base, r.commitCycle,
                r.seq, r.pcIdx, flagString(r).c_str());
}

/** Totals for one fraction-of-lifetime stall category. */
struct Segment
{
    const char *name;
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;

    void add(std::uint64_t from, std::uint64_t to)
    {
        if (from == obs::kNoCycle || to == obs::kNoCycle || to < from)
            return;
        cycles += to - from;
        ++insts;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    config::CliArgs args(argc, argv);
    bool dump = args.getBool("dump");
    bool timeline = args.getBool("timeline");
    bool countsOnly = args.getBool("counts");

    Filter f;
    f.hasPc = args.has("pc");
    if (f.hasPc)
        f.pc = static_cast<std::uint32_t>(args.getInt("pc", 0));
    if (args.has("stream")) {
        std::string s = toLower(args.get("stream"));
        if (s == "lsq")
            f.stream = 0;
        else if (s == "lvaq")
            f.stream = 1;
        else
            fatal("--stream expects lsq or lvaq, got '%s'", s.c_str());
    }
    if (args.has("cycles")) {
        std::string range = args.get("cycles");
        auto colon = range.find(':');
        std::int64_t lo = 0, hi = 0;
        if (colon == std::string::npos ||
            !parseInt(range.substr(0, colon), lo) ||
            !parseInt(range.substr(colon + 1), hi) || lo < 0 || hi < lo)
            fatal("--cycles expects LO:HI, got '%s'", range.c_str());
        f.cycleLo = static_cast<std::uint64_t>(lo);
        f.cycleHi = static_cast<std::uint64_t>(hi);
    }
    std::uint64_t limit = static_cast<std::uint64_t>(
        args.getInt("limit", timeline ? 50 : 0));
    args.rejectUnknown();

    if (args.positional().size() != 1)
        fatal("usage: ddtrace <trace-file> [--dump|--timeline|"
              "--counts] [--pc=N] [--stream=lsq|lvaq] [--cycles=LO:HI]"
              " [--limit=N]");
    obs::TraceReader reader(args.positional()[0]);
    const obs::TraceHeader &hdr = reader.header();

    if (!countsOnly)
        std::printf("trace: workload=%s config=%s%s%s records=%" PRIu64
                    " (format v%u)\n",
                    hdr.workload.c_str(), hdr.notation.c_str(),
                    hdr.label.empty() ? "" : " label=",
                    hdr.label.c_str(), hdr.recordCount, hdr.version);

    // Counters for the summary / --counts modes.
    std::uint64_t committed = 0, matched = 0, shown = 0;
    std::uint64_t lsqLoads = 0, lsqStores = 0;
    std::uint64_t lvaqLoads = 0, lvaqStores = 0;
    std::uint64_t forwards = 0, fastForwards = 0, combinedN = 0;
    std::uint64_t missteers = 0, replicas = 0;
    std::uint64_t lastCommit = 0;
    Segment segs[] = {
        {"fetch -> dispatch"},   {"dispatch -> issue"},
        {"issue -> access"},     {"access -> writeback"},
        {"writeback -> commit"},
    };

    obs::TraceRecord r;
    while (reader.next(r)) {
        ++committed;
        lastCommit = r.commitCycle;
        if (r.isLoad || r.isStore) {
            std::uint64_t &n = r.isLoad
                                   ? (r.lvaqStream ? lvaqLoads : lsqLoads)
                                   : (r.lvaqStream ? lvaqStores
                                                   : lsqStores);
            ++n;
            forwards += r.forwarded;
            fastForwards += r.fastForwarded;
            combinedN += r.combined;
            missteers += r.missteered;
            replicas += r.replicated;
        }
        segs[0].add(r.fetchCycle, r.dispatchCycle);
        segs[1].add(r.dispatchCycle, r.issueCycle);
        segs[2].add(r.issueCycle, r.accessCycle);
        segs[3].add(r.accessCycle != obs::kNoCycle ? r.accessCycle
                                                   : r.issueCycle,
                    r.wbCycle);
        segs[4].add(r.wbCycle, r.commitCycle);

        if ((dump || timeline) && f.matches(r)) {
            ++matched;
            if (limit == 0 || shown < limit) {
                ++shown;
                if (timeline)
                    timelineRecord(r);
                else
                    dumpRecord(r);
            }
        }
    }

    if (countsOnly) {
        // Stable key=value lines; EXPERIMENTS.md cross-checks these
        // against the run manifest's result block.
        std::printf("committed=%" PRIu64 "\n", committed);
        std::printf("lsq.loads=%" PRIu64 "\n", lsqLoads);
        std::printf("lsq.stores=%" PRIu64 "\n", lsqStores);
        std::printf("lvaq.loads=%" PRIu64 "\n", lvaqLoads);
        std::printf("lvaq.stores=%" PRIu64 "\n", lvaqStores);
        return 0;
    }

    if (dump || timeline) {
        if (limit != 0 && matched > shown)
            std::printf("... %" PRIu64 " more matching records "
                        "(raise --limit)\n",
                        matched - shown);
        return 0;
    }

    std::printf("\n%" PRIu64 " committed instructions, last commit at "
                "cycle %" PRIu64 "\n",
                committed, lastCommit);
    std::printf("streams: LSQ %" PRIu64 " loads / %" PRIu64
                " stores, LVAQ %" PRIu64 " loads / %" PRIu64
                " stores\n",
                lsqLoads, lsqStores, lvaqLoads, lvaqStores);
    std::printf("in-queue service: %" PRIu64 " forwards, %" PRIu64
                " fast forwards, %" PRIu64 " combined grants\n",
                forwards, fastForwards, combinedN);
    if (replicas || missteers)
        std::printf("steering: %" PRIu64 " replicated, %" PRIu64
                    " missteered\n",
                    replicas, missteers);

    std::printf("\nstall attribution (mean cycles per instruction "
                "observed in the segment):\n");
    for (const Segment &s : segs) {
        if (s.insts == 0)
            continue;
        std::printf("  %-22s %8.2f  (%" PRIu64 " insts)\n", s.name,
                    static_cast<double>(s.cycles) /
                        static_cast<double>(s.insts),
                    s.insts);
    }
    return 0;
}
