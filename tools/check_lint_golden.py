#!/usr/bin/env python3
"""Static-analysis regression gate.

Runs ``ddlint --workload=all --format=json`` and diffs the
per-workload verdict counts (loads/stores local/nonlocal/ambiguous)
and diagnostic totals against the committed golden file. Any drift —
an analyzer change that silently loses precision, an ISA change that
shifts a verdict, a workload edit — fails the gate with a field-level
report.

Usage:
    check_lint_golden.py --ddlint=build/tools/ddlint \\
        --golden=tests/lint_golden.json [--update]

``--update`` rewrites the golden from the current ddlint output;
commit the result together with the change that moved the numbers.

Stdlib only, like tools/validate_manifest.py.
"""

import argparse
import json
import subprocess
import sys

COUNT_KEYS = ("errors", "warnings", "notes")
MIX_KEYS = ("local", "nonlocal", "ambiguous")


def extract(doc):
    """The golden view of a ddsim-lint-v1 document: per-program counts
    keyed by program name, in document order."""
    if doc.get("schema") != "ddsim-lint-v1":
        sys.exit(f"error: not a ddsim-lint-v1 document "
                 f"(schema={doc.get('schema')!r})")
    golden = {"schema": "ddsim-lint-v1-golden", "programs": {}}
    for prog in doc["programs"]:
        entry = {k: prog[k] for k in COUNT_KEYS}
        for mix in ("loads", "stores"):
            entry[mix] = {k: prog[mix][k] for k in MIX_KEYS}
        entry["mem_insts"] = len(prog["verdicts"])
        golden["programs"][prog["program"]] = entry
    return golden


def diff(want, got):
    """Human-readable field-level differences, want vs got."""
    out = []
    wp, gp = want["programs"], got["programs"]
    for name in sorted(set(wp) | set(gp)):
        if name not in gp:
            out.append(f"{name}: missing from ddlint output")
            continue
        if name not in wp:
            out.append(f"{name}: not in the golden (new workload? "
                       f"run with --update)")
            continue
        w, g = wp[name], gp[name]
        for key in COUNT_KEYS + ("mem_insts",):
            if w[key] != g[key]:
                out.append(f"{name}.{key}: golden {w[key]}, "
                           f"got {g[key]}")
        for mix in ("loads", "stores"):
            for k in MIX_KEYS:
                if w[mix][k] != g[mix][k]:
                    out.append(f"{name}.{mix}.{k}: golden "
                               f"{w[mix][k]}, got {g[mix][k]}")
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--ddlint", required=True,
                    help="path to the ddlint binary")
    ap.add_argument("--golden", required=True,
                    help="path to the committed golden file")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the golden from current output")
    args = ap.parse_args()

    proc = subprocess.run(
        [args.ddlint, "--workload=all", "--format=json"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(f"error: ddlint exited {proc.returncode} "
                 f"(error-severity diagnostics?)")
    got = extract(json.loads(proc.stdout))

    if args.update:
        with open(args.golden, "w") as f:
            json.dump(got, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"golden updated: {args.golden} "
              f"({len(got['programs'])} programs)")
        return

    try:
        with open(args.golden) as f:
            want = json.load(f)
    except FileNotFoundError:
        sys.exit(f"error: golden file {args.golden!r} not found "
                 f"(generate with --update)")

    problems = diff(want, got)
    if problems:
        print("lint golden drift detected:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        print(f"if intentional, regenerate with:\n"
              f"  python3 tools/check_lint_golden.py "
              f"--ddlint={args.ddlint} --golden={args.golden} "
              f"--update", file=sys.stderr)
        sys.exit(1)
    print(f"lint golden OK: {len(got['programs'])} programs match")


if __name__ == "__main__":
    main()
