/**
 * @file
 * ddconvert: produce and inspect ddsim-xtrace-v1 files (the portable
 * external trace format; see docs/TRACES.md).
 *
 * Modes:
 *   --in=<f> --out=<f>        convert a public text-format trace
 *                             (PC op dst src1 src2 [mem]) to xtrace
 *   --workload=<n> --out=<f>  record a registry workload (including
 *                             the adversarial set) into an xtrace
 *   --info <xtrace>           dump header + annotation stats as
 *                             stable key=value lines (golden-able)
 *
 * Converter knobs:
 *   --stack-range=LO:HI  source-address window treated as the stack
 *                        (hex accepted); accesses inside it map to
 *                        ddsim's stack region and fp-based addressing
 *   --name=<s>           program name recorded in the header
 *   --no-hints           do not burn annotation verdicts into the
 *                        text's localHint bits
 *
 * Recorder knobs: --scale=<n> --seed=<n> --max-insts=<n>.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "config/cli.hh"
#include "util/log.hh"
#include "util/str.hh"
#include "vm/convert.hh"
#include "vm/xtrace.hh"
#include "workloads/common.hh"

using namespace ddsim;

namespace {

/** Parse one address; hex with 0x prefix or decimal. */
std::uint64_t
parseAddr(const std::string &s, const char *what)
{
    if (s.empty())
        fatal("%s: empty address", what);
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0')
        fatal("%s: bad address '%s'", what, s.c_str());
    return v;
}

/**
 * Stable key=value dump. CI pins these lines as a golden: they must
 * only ever change deliberately, alongside the format version.
 */
void
printInfo(const vm::ExternalTrace &xt)
{
    const vm::XAnnotation &a = xt.annotation();
    std::printf("name=%s\n", xt.program().name().c_str());
    std::printf("format=%s\n", xt.format().c_str());
    std::printf("hints_valid=%d\n", xt.hintsValid() ? 1 : 0);
    std::printf("text_words=%zu\n", xt.verdicts().size());
    std::printf("insts=%" PRIu64 "\n", xt.instCount());
    std::printf("mem_pcs=%" PRIu64 "\n", a.memPcs);
    std::printf("local_pcs=%" PRIu64 "\n", a.localPcs);
    std::printf("nonlocal_pcs=%" PRIu64 "\n", a.nonLocalPcs);
    std::printf("ambiguous_pcs=%" PRIu64 "\n", a.ambiguousPcs);
    std::printf("mem_ops=%" PRIu64 "\n", a.memOps);
    std::printf("sp_agree=%" PRIu64 "\n", a.spAgree);
    std::printf("sp_disagree=%" PRIu64 "\n", a.spDisagree);
}

} // namespace

int
main(int argc, char **argv)
{
    config::CliArgs args(argc, argv);
    bool info = args.getBool("info");
    std::string in = args.get("in");
    std::string out = args.get("out");
    std::string workload = args.get("workload");

    vm::ConvertOptions copts;
    if (args.has("name"))
        copts.name = args.get("name");
    copts.burnHints = !args.getBool("no-hints");
    if (args.has("stack-range")) {
        std::string range = args.get("stack-range");
        auto colon = range.find(':');
        if (colon == std::string::npos)
            fatal("--stack-range expects LO:HI, got '%s'",
                  range.c_str());
        copts.stackLo =
            parseAddr(range.substr(0, colon), "--stack-range");
        copts.stackHi =
            parseAddr(range.substr(colon + 1), "--stack-range");
        if (copts.stackHi < copts.stackLo)
            fatal("--stack-range: HI (%llx) below LO (%llx)",
                  static_cast<unsigned long long>(copts.stackHi),
                  static_cast<unsigned long long>(copts.stackLo));
    }

    std::int64_t scale = args.getInt("scale", 0);
    std::int64_t seed = args.getInt("seed", 0);
    std::int64_t maxInsts = args.getInt("max-insts", 0);
    if (scale < 0 || seed < 0 || maxInsts < 0)
        fatal("--scale/--seed/--max-insts must be >= 0");
    args.rejectUnknown();

    if (info) {
        if (args.positional().size() != 1 || !in.empty() ||
            !workload.empty())
            fatal("usage: ddconvert --info <xtrace-file>");
        printInfo(*vm::ExternalTrace::load(args.positional()[0]));
        return 0;
    }

    if (!args.positional().empty())
        fatal("unexpected positional argument '%s' (inputs are named: "
              "--in=, --workload=)",
              args.positional()[0].c_str());
    if (out.empty())
        fatal("--out=<file> is required");
    if (in.empty() == workload.empty())
        fatal("exactly one of --in=<text trace> or --workload=<name> "
              "is required");

    std::shared_ptr<const vm::ExternalTrace> xt;
    if (!in.empty()) {
        xt = vm::convertTextTrace(in, copts);
    } else {
        workloads::WorkloadParams p;
        if (scale > 0)
            p.scale = static_cast<std::uint64_t>(scale);
        if (args.has("seed"))
            p.seed = static_cast<std::uint64_t>(seed);
        auto program = std::make_shared<const prog::Program>(
            workloads::build(workload, p));
        // Workload generators emit trustworthy localHint bits, so a
        // recorded trace keeps the Annotation classifier usable.
        xt = vm::ExternalTrace::fromProgram(
            program, static_cast<std::uint64_t>(maxInsts), "workload",
            true);
    }
    xt->save(out);
    std::printf("wrote %s: %" PRIu64 " insts, %zu text words, "
                "%" PRIu64 "/%" PRIu64 "/%" PRIu64
                " local/nonlocal/ambiguous pcs\n",
                out.c_str(), xt->instCount(), xt->verdicts().size(),
                xt->annotation().localPcs, xt->annotation().nonLocalPcs,
                xt->annotation().ambiguousPcs);
    return 0;
}
