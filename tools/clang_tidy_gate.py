#!/usr/bin/env python3
"""clang-tidy regression gate over src/.

Runs clang-tidy (checks from the repo's .clang-tidy) on every .cc file
under src/ and compares the normalized diagnostics against a committed
baseline. New diagnostics fail the gate; fixed ones are reported so
the baseline can be tightened. This keeps the tree warning-clean
without requiring clang-tidy locally: CI enforces, developers
regenerate with --update when a finding is accepted.

A diagnostic is normalized to "<repo-relative-file>:<check-id>" —
line numbers are deliberately dropped so unrelated edits to the same
file don't churn the baseline.

Usage:
    clang_tidy_gate.py --build-dir=build \\
        --baseline=tools/clang_tidy_baseline.txt [--update] [--jobs=N]

Requires a build dir configured with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
Stdlib only.
"""

import argparse
import json
import multiprocessing.pool
import os
import re
import shutil
import subprocess
import sys

DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): .* \[(?P<check>[\w.,-]+)\]$")


def parse_diagnostics(text, root):
    """Normalize clang-tidy output into {"file:check", ...}. Paths are
    made repo-relative to @p root; diagnostics outside the repo (system
    or third-party headers) are dropped."""
    found = set()
    for line in text.splitlines():
        m = DIAG_RE.match(line.strip())
        if not m:
            continue
        path = os.path.abspath(m.group("file"))
        rel = os.path.relpath(path, root)
        if rel.startswith(".."):
            continue
        for check in m.group("check").split(","):
            found.add(f"{rel}:{check}")
    return found


def read_baseline(path):
    """Baseline entries, ignoring blank lines and # comments."""
    entries = set()
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    entries.add(line)
    except FileNotFoundError:
        pass
    return entries


def write_baseline(path, entries):
    with open(path, "w") as f:
        f.write("# clang-tidy baseline: known findings, one "
                "<file>:<check> per line.\n"
                "# Regenerate with tools/clang_tidy_gate.py "
                "--update after accepting a finding;\n"
                "# the gate fails on any finding not listed here.\n")
        for e in sorted(entries):
            f.write(e + "\n")


def gate(found, baseline):
    """(new, fixed) sets relative to the baseline."""
    return found - baseline, baseline - found


def source_files(root):
    out = []
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        out.extend(os.path.join(dirpath, n) for n in names
                   if n.endswith(".cc"))
    return sorted(out)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", required=True,
                    help="build dir with compile_commands.json")
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--update", action="store_true")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--clang-tidy", default="clang-tidy")
    args = ap.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.exists(
            os.path.join(args.build_dir, "compile_commands.json")):
        sys.exit(f"error: {args.build_dir}/compile_commands.json not "
                 f"found (configure with "
                 f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    if shutil.which(args.clang_tidy) is None:
        sys.exit(f"error: {args.clang_tidy!r} not found on PATH")

    files = source_files(root)
    if not files:
        sys.exit("error: no .cc files under src/")

    def run_one(path):
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True, text=True)
        return path, proc.stdout, proc.returncode

    found = set()
    hard_errors = []
    with multiprocessing.pool.ThreadPool(max(1, args.jobs)) as pool:
        for path, out, rc in pool.imap_unordered(run_one, files):
            diags = parse_diagnostics(out, root)
            found |= diags
            # rc != 0 with no parsed diagnostics means clang-tidy
            # itself failed (bad flags, missing entry): surface it.
            if rc != 0 and not diags:
                hard_errors.append((path, out.strip()))

    if hard_errors:
        for path, out in hard_errors:
            print(f"clang-tidy failed on {path}:\n{out}",
                  file=sys.stderr)
        sys.exit(2)

    if args.update:
        write_baseline(args.baseline, found)
        print(f"baseline updated: {len(found)} finding(s)")
        return

    baseline = read_baseline(args.baseline)
    new, fixed = gate(found, baseline)
    if fixed:
        print(f"{len(fixed)} baselined finding(s) no longer fire; "
              f"tighten with --update:")
        for e in sorted(fixed):
            print(f"  {e}")
    if new:
        print(f"{len(new)} new clang-tidy finding(s):",
              file=sys.stderr)
        for e in sorted(new):
            print(f"  {e}", file=sys.stderr)
        print("fix them, or accept with tools/clang_tidy_gate.py "
              "--update", file=sys.stderr)
        sys.exit(1)
    print(f"clang-tidy gate OK: {len(files)} files, "
          f"{len(found)} finding(s), all baselined")


if __name__ == "__main__":
    main()
