#!/usr/bin/env python3
"""Compare a fresh `bench_simspeed --json` measurement against the
committed BENCH_simspeed.json baseline and fail on large regressions.

Prints the full delta table, then exits 1 if any matched row's
throughput fell more than --tolerance (default 0.25 = 25%) below the
baseline. Rows are matched by (name, engine) for single runs and by
engine for the Fig. 7 sweep; rows present on only one side are
reported but never fail. A schema-1 document (fig7_sweep as a single
object) is read as one "replay" sweep row, so the gate works across
the schema bump.

The tolerance is deliberately wide: shared CI runners are noisy, and
the committed baseline is regenerated on a quiet machine. This gate
catches real throughput cliffs — an accidental O(n^2), a disabled
fast path — not scheduler jitter.

Usage: check_simspeed.py <baseline.json> <fresh.json> [--tolerance=F]

Stdlib only.
"""

import json
import sys


def sweep_rows(doc):
    """fig7_sweep as {engine: row}, accepting both schemas."""
    fs = doc.get("fig7_sweep")
    if fs is None:
        return {}
    if isinstance(fs, dict):  # schema 1: one implicit replay row
        return {"replay": fs}
    return {row["engine"]: row for row in fs}


def main(argv):
    tolerance = 0.25
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print(f"unknown option {arg!r}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(paths[0]) as f:
        base = json.load(f)
    with open(paths[1]) as f:
        fresh = json.load(f)

    failures = []

    def compare(label, baseline, measured):
        if baseline is None:
            delta = "    new"
        else:
            delta = f"{(measured / baseline - 1) * 100:+6.1f}%"
            if measured < baseline * (1 - tolerance):
                failures.append(f"{label}: {measured:.3f} Minst/s is "
                                f"more than {tolerance * 100:.0f}% "
                                f"below the baseline {baseline:.3f}")
        print(f"{label:38} {baseline or 0:9.3f} {measured:9.3f} "
              f"{delta:>7}")

    print(f'{"run":38} {"baseline":>9} {"fresh":>9} {"delta":>7}')
    ref = {(s["name"], s["engine"]): s["minst_per_s"]
           for s in base.get("single_runs", [])}
    for s in fresh.get("single_runs", []):
        key = (s["name"], s["engine"])
        compare(f'{s["name"]}[{s["engine"]}]', ref.get(key),
                s["minst_per_s"])

    base_sweeps = sweep_rows(base)
    for engine, row in sweep_rows(fresh).items():
        b = base_sweeps.get(engine)
        compare(f"fig7_sweep[{engine}]",
                b["minst_per_s"] if b else None, row["minst_per_s"])

    if failures:
        for f in failures:
            print(f"REGRESSION {f}", file=sys.stderr)
        print(f"FAIL: {len(failures)} row(s) regressed beyond "
              f"{tolerance * 100:.0f}%", file=sys.stderr)
        return 1
    print(f"OK: no row more than {tolerance * 100:.0f}% below "
          f"baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
