/**
 * @file
 * Configuration tests: Table-1 defaults, (N+M) presets and notation,
 * validation, and CLI override parsing.
 */

#include <gtest/gtest.h>

#include "config/cli.hh"
#include "config/machine_config.hh"
#include "config/presets.hh"
#include "util/log.hh"

using namespace ddsim;
using namespace ddsim::config;

TEST(Config, Table1Defaults)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.issueWidth, 16);
    EXPECT_EQ(cfg.robSize, 128);
    EXPECT_EQ(cfg.lsqSize, 64);
    EXPECT_EQ(cfg.lvaqSize, 64);
    EXPECT_EQ(cfg.numIntAlu, 16);
    EXPECT_EQ(cfg.numFpAlu, 16);
    EXPECT_EQ(cfg.numIntMultDiv, 4);
    EXPECT_EQ(cfg.numFpMultDiv, 4);
    EXPECT_EQ(cfg.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1.assoc, 2u);
    EXPECT_EQ(cfg.l1.hitLatency, 2u);
    EXPECT_EQ(cfg.l1.lineBytes, 32u);
    EXPECT_EQ(cfg.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(cfg.l2.assoc, 4u);
    EXPECT_EQ(cfg.l2.hitLatency, 12u);
    EXPECT_EQ(cfg.memLatency, 50u);
    EXPECT_EQ(cfg.lvc.sizeBytes, 2048u);
    EXPECT_EQ(cfg.lvc.assoc, 1u);
    EXPECT_EQ(cfg.lvc.hitLatency, 1u);
}

TEST(Config, CacheGeometryHelpers)
{
    CacheParams p{32 * 1024, 2, 32, 2, 4};
    EXPECT_EQ(p.numSets(), 512u);
    CacheParams lvc{2048, 1, 32, 1, 2};
    EXPECT_EQ(lvc.numSets(), 64u);
}

TEST(Presets, BaselineNotation)
{
    auto cfg = baseline(4);
    EXPECT_EQ(cfg.notation(), "(4+0)");
    EXPECT_FALSE(cfg.lvcEnabled);
    EXPECT_EQ(cfg.classifier, ClassifierKind::None);
}

TEST(Presets, DecoupledNotation)
{
    auto cfg = decoupled(3, 2);
    EXPECT_EQ(cfg.notation(), "(3+2)");
    EXPECT_TRUE(cfg.lvcEnabled);
    EXPECT_EQ(cfg.classifier, ClassifierKind::Oracle);
    EXPECT_FALSE(cfg.fastForward);
    EXPECT_EQ(cfg.combining, 1);
}

TEST(Presets, OptimizedAddsBothTechniques)
{
    auto cfg = decoupledOptimized(3, 2);
    EXPECT_TRUE(cfg.fastForward);
    EXPECT_EQ(cfg.combining, 2);
    auto cfg4 = decoupledOptimized(3, 1, 4);
    EXPECT_EQ(cfg4.combining, 4);
}

TEST(Presets, FromNotationParses)
{
    EXPECT_EQ(fromNotation("(3+2)").notation(), "(3+2)");
    EXPECT_EQ(fromNotation("4+0").notation(), "(4+0)");
    EXPECT_FALSE(fromNotation("2+0").lvcEnabled);
    EXPECT_TRUE(fromNotation("2+2").lvcEnabled);
    setQuiet(true);
    EXPECT_THROW(fromNotation("abc"), FatalError);
    EXPECT_THROW(fromNotation("0+2"), FatalError);
}

TEST(Config, DescribeMentionsKeyParameters)
{
    auto cfg = decoupledOptimized(3, 2);
    std::string d = cfg.describe();
    EXPECT_NE(d.find("(3+2)"), std::string::npos);
    EXPECT_NE(d.find("LVC 2KB"), std::string::npos);
    EXPECT_NE(d.find("fastfwd"), std::string::npos);
    EXPECT_NE(d.find("combine=2"), std::string::npos);
}

TEST(Config, ValidationCatchesBadValues)
{
    setQuiet(true);
    MachineConfig cfg;
    cfg.robSize = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = MachineConfig{};
    cfg.lvcEnabled = true;
    cfg.classifier = ClassifierKind::None;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = MachineConfig{};
    cfg.combining = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Cli, ParsesOptionsAndPositional)
{
    const char *argv[] = {"prog", "--scale=5", "--flag",
                          "positional", "--name=x y"};
    CliArgs args(5, argv);
    EXPECT_EQ(args.getInt("scale", 0), 5);
    EXPECT_TRUE(args.getBool("flag"));
    EXPECT_FALSE(args.getBool("missing"));
    EXPECT_EQ(args.get("name"), "x y");
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "positional");
    EXPECT_EQ(args.getInt("absent", 7), 7);
}

TEST(Cli, OverridesApplyToConfig)
{
    const char *argv[] = {"prog",       "--width=8",   "--rob=64",
                          "--l1.ports=3", "--lvc.size=4K",
                          "--lvc=1",    "--classifier=oracle",
                          "--fastfwd=1", "--combining=2"};
    CliArgs args(9, argv);
    MachineConfig cfg;
    applyOverrides(cfg, args);
    EXPECT_EQ(cfg.issueWidth, 8);
    EXPECT_EQ(cfg.fetchWidth, 8);
    EXPECT_EQ(cfg.robSize, 64);
    EXPECT_EQ(cfg.l1.ports, 3);
    EXPECT_EQ(cfg.lvc.sizeBytes, 4096u);
    EXPECT_TRUE(cfg.lvcEnabled);
    EXPECT_EQ(cfg.classifier, ClassifierKind::Oracle);
    EXPECT_TRUE(cfg.fastForward);
    EXPECT_EQ(cfg.combining, 2);
}

TEST(Cli, BadOverrideValueIsFatal)
{
    setQuiet(true);
    const char *argv[] = {"prog", "--rob=abc"};
    CliArgs args(2, argv);
    MachineConfig cfg;
    EXPECT_THROW(applyOverrides(cfg, args), FatalError);

    const char *argv2[] = {"prog", "--classifier=quantum"};
    CliArgs args2(2, argv2);
    EXPECT_THROW(applyOverrides(cfg, args2), FatalError);
}

TEST(Cli, RejectsUnknownOptionWithSuggestion)
{
    setQuiet(true);
    // The queried key registers; the typo'd one does not, and used to
    // silently no-op the experiment.
    const char *argv[] = {"prog", "--l1.siez=64K"};
    CliArgs args(2, argv);
    MachineConfig cfg;
    try {
        applyOverrides(cfg, args);
        FAIL() << "typo'd option was accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("l1.siez"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("l1.size"),
                  std::string::npos)
            << "expected a did-you-mean suggestion: " << e.what();
    }
}

TEST(Cli, RejectUnknownHonorsQueriesAndMarkKnown)
{
    setQuiet(true);
    const char *argv[] = {"prog", "--scale=2", "--extra=1"};
    CliArgs args(3, argv);
    EXPECT_EQ(args.getInt("scale", 0), 2);
    EXPECT_THROW(args.rejectUnknown(), FatalError);
    args.markKnown("extra");
    EXPECT_NO_THROW(args.rejectUnknown());
}

TEST(Cli, PassthroughEscapeSkipsRejection)
{
    setQuiet(true);
    // Everything after a bare "--" is exempt; options before it are
    // still checked.
    const char *argv[] = {"prog", "--rob=64", "--", "--custom=7"};
    CliArgs args(4, argv);
    MachineConfig cfg;
    EXPECT_NO_THROW(applyOverrides(cfg, args));
    EXPECT_EQ(cfg.robSize, 64);
    EXPECT_EQ(args.getInt("custom", 0), 7); // still parsed normally

    const char *argv2[] = {"prog", "--rbo=64", "--", "--custom=7"};
    CliArgs args2(4, argv2);
    EXPECT_THROW(applyOverrides(cfg, args2), FatalError);
}

TEST(Config, ClassifierNames)
{
    EXPECT_STREQ(classifierName(ClassifierKind::Oracle), "oracle");
    EXPECT_STREQ(classifierName(ClassifierKind::Predictor),
                 "predictor");
    EXPECT_STREQ(classifierName(ClassifierKind::None), "none");
}
