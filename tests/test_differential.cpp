/**
 * @file
 * Differential timing suite: every workload under five reference
 * machine configurations, asserted field-for-field against the pinned
 * SimResults in differential_baseline.inc (generated from the seed
 * timing model by tools/ddbaseline).
 *
 * Any scheduling-core optimization — wakeup networks, indexed queues,
 * cycle skip-ahead, trace replay — must keep these numbers
 * bit-identical: the speedups are implementation-only, never
 * model-visible.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>

#include "config/presets.hh"
#include "sim/runner.hh"
#include "vm/trace.hh"
#include "workloads/common.hh"

using namespace ddsim;

namespace {

struct BaselineRow
{
    const char *workload;
    const char *cfg;
    std::uint64_t cycles;
    std::uint64_t committed;
    std::uint64_t loads;
    std::uint64_t stores;
    std::uint64_t localLoads;
    std::uint64_t localStores;
    std::uint64_t l1Accesses;
    std::uint64_t l1Misses;
    std::uint64_t lvcAccesses;
    std::uint64_t lvcMisses;
    std::uint64_t l2Accesses;
    std::uint64_t memAccesses;
    std::uint64_t lsqForwards;
    std::uint64_t lvaqForwards;
    std::uint64_t lvaqFastForwards;
    std::uint64_t lvaqCombined;
    std::uint64_t lvaqLoads;
    std::uint64_t missteered;
    double meanDynFrameWords;
};

const BaselineRow kBaseline[] = {
#include "differential_baseline.inc"
};

/** Must stay in sync with diffConfig() in tools/ddbaseline.cc. */
config::MachineConfig
diffConfig(const std::string &name)
{
    if (name == "base4")
        return config::baseline(4);
    if (name == "dec32")
        return config::decoupled(3, 2);
    if (name == "dec22")
        return config::decoupled(2, 2);
    if (name == "rep32") {
        config::MachineConfig cfg = config::decoupled(3, 2);
        cfg.classifier = config::ClassifierKind::Replicate;
        return cfg;
    }
    return config::decoupledOptimized(3, 2);
}

/** Workload programs built once and shared across all configs. */
const prog::Program &
programFor(const std::string &workload)
{
    static std::map<std::string, std::unique_ptr<prog::Program>> cache;
    auto it = cache.find(workload);
    if (it == cache.end()) {
        workloads::WorkloadParams p;
        p.scale = workloads::find(workload)->defaultScale / 8;
        it = cache
                 .emplace(workload,
                          std::make_unique<prog::Program>(
                              workloads::build(workload, p)))
                 .first;
    }
    return *it->second;
}

void
expectMatchesBaseline(const sim::SimResult &r, const BaselineRow &row,
                      const char *how)
{
    SCOPED_TRACE(std::string(row.workload) + "/" + row.cfg + " via " +
                 how);
    EXPECT_EQ(r.cycles, row.cycles);
    EXPECT_EQ(r.committed, row.committed);
    EXPECT_EQ(r.loads, row.loads);
    EXPECT_EQ(r.stores, row.stores);
    EXPECT_EQ(r.localLoads, row.localLoads);
    EXPECT_EQ(r.localStores, row.localStores);
    EXPECT_EQ(r.l1Accesses, row.l1Accesses);
    EXPECT_EQ(r.l1Misses, row.l1Misses);
    EXPECT_EQ(r.lvcAccesses, row.lvcAccesses);
    EXPECT_EQ(r.lvcMisses, row.lvcMisses);
    EXPECT_EQ(r.l2Accesses, row.l2Accesses);
    EXPECT_EQ(r.memAccesses, row.memAccesses);
    EXPECT_EQ(r.lsqForwards, row.lsqForwards);
    EXPECT_EQ(r.lvaqForwards, row.lvaqForwards);
    EXPECT_EQ(r.lvaqFastForwards, row.lvaqFastForwards);
    EXPECT_EQ(r.lvaqCombined, row.lvaqCombined);
    EXPECT_EQ(r.lvaqLoads, row.lvaqLoads);
    EXPECT_EQ(r.missteered, row.missteered);
    EXPECT_DOUBLE_EQ(r.meanDynFrameWords, row.meanDynFrameWords);
}

class Differential : public ::testing::TestWithParam<BaselineRow>
{};

std::string
rowName(const ::testing::TestParamInfo<BaselineRow> &info)
{
    return std::string(info.param.workload) + "_" + info.param.cfg;
}

} // namespace

TEST_P(Differential, DirectRunMatchesSeedModel)
{
    const BaselineRow &row = GetParam();
    sim::SimResult r =
        sim::run(programFor(row.workload), diffConfig(row.cfg));
    expectMatchesBaseline(r, row, "direct");
}

TEST_P(Differential, TraceReplayMatchesSeedModel)
{
    const BaselineRow &row = GetParam();
    const prog::Program &program = programFor(row.workload);
    auto trace = std::make_shared<const vm::RecordedTrace>(
        vm::RecordedTrace::record(program));
    sim::RunOptions opts;
    opts.trace = trace;
    sim::SimResult r = sim::run(program, diffConfig(row.cfg), opts);
    expectMatchesBaseline(r, row, "trace-replay");
}

TEST_P(Differential, ObservabilityOnMatchesSeedModel)
{
    // Manifest capture, interval sampling and pipeline tracing must be
    // pure observers: with all three enabled, every pinned column
    // stays bit-identical to the seed model.
    const BaselineRow &row = GetParam();
    sim::RunOptions opts;
    opts.captureManifest = true;
    opts.sampleInterval = 4096;
    opts.tracePath = ::testing::TempDir() + "diff_" + row.workload +
                     "_" + row.cfg + ".trace";
    sim::SimResult r =
        sim::run(programFor(row.workload), diffConfig(row.cfg), opts);
    expectMatchesBaseline(r, row, "observability-on");
    EXPECT_FALSE(r.manifestJson.empty());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloadsAllConfigs, Differential,
                         ::testing::ValuesIn(kBaseline), rowName);

TEST(DifferentialBatched, OneColumnPassMatchesSeedModel)
{
    // Batched multi-config replay: every workload's five pinned
    // configurations as ONE runBatch column over one shared trace
    // pass. Each lane must stay bit-identical to the seed model —
    // batching is an implementation speedup, never model-visible.
    std::map<std::string, std::vector<const BaselineRow *>> byWorkload;
    for (const BaselineRow &row : kBaseline)
        byWorkload[row.workload].push_back(&row);
    ASSERT_FALSE(byWorkload.empty());
    for (const auto &[workload, rows] : byWorkload) {
        const prog::Program &program = programFor(workload);
        std::vector<config::MachineConfig> cfgs;
        cfgs.reserve(rows.size());
        for (const BaselineRow *row : rows)
            cfgs.push_back(diffConfig(row->cfg));
        std::vector<sim::SimResult> rs = sim::runBatch(program, cfgs);
        ASSERT_EQ(rs.size(), rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i)
            expectMatchesBaseline(rs[i], *rows[i], "batched");
    }
}
