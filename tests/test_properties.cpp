/**
 * @file
 * Property-style parameterized tests: invariants that must hold over
 * whole families of configurations and randomly-built programs.
 */

#include <gtest/gtest.h>

#include "config/presets.hh"
#include "isa/disasm.hh"
#include "prog/asm_parser.hh"
#include "prog/builder.hh"
#include "sim/sweep.hh"
#include "util/rng.hh"
#include "vm/executor.hh"
#include "workloads/common.hh"

#include <memory>

using namespace ddsim;
using namespace ddsim::sim;
namespace reg = ddsim::isa::reg;

namespace {

/**
 * Build a random but self-consistent program: straight-line blocks of
 * ALU ops interleaved with stack/heap memory traffic and a couple of
 * leaf calls, all derived from a seed.
 */
prog::Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    prog::ProgramBuilder b("rand" + std::to_string(seed));
    Addr scratch = b.dataWords(256);

    prog::Label main = b.newLabel("main");
    prog::Label leaf = b.newLabel("leaf");

    b.bind(main);
    b.addi(reg::sp, reg::sp, -64);
    b.la(reg::s0, scratch);
    b.li(reg::s1, static_cast<std::int32_t>(rng.range(20, 60)));
    prog::Label loop = b.here();
    int ops = static_cast<int>(rng.range(4, 12));
    for (int i = 0; i < ops; ++i) {
        RegId d = static_cast<RegId>(reg::t0 + rng.below(6));
        RegId s = static_cast<RegId>(reg::t0 + rng.below(6));
        switch (rng.below(4)) {
          case 0:
            b.add(d, s, reg::s1);
            break;
          case 1:
            b.sw(d, static_cast<std::int32_t>(rng.below(12)) * 4,
                 reg::sp, true);
            break;
          case 2:
            b.lw(d, static_cast<std::int32_t>(rng.below(12)) * 4,
                 reg::sp, true);
            break;
          case 3:
            b.lw(d, static_cast<std::int32_t>(rng.below(64)) * 4,
                 reg::s0);
            break;
        }
    }
    if (rng.chance(0.7))
        b.jal(leaf);
    b.addi(reg::s1, reg::s1, -1);
    b.bgtz(reg::s1, loop);
    b.print(reg::t0);
    b.halt();

    b.bind(leaf);
    b.addi(reg::sp, reg::sp, -16);
    b.sw(reg::a0, 0, reg::sp, true);
    b.lw(reg::v0, 0, reg::sp, true);
    b.addi(reg::sp, reg::sp, 16);
    b.ret();

    return b.finish();
}

} // namespace

class RandomProgram : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgram, ExecutesIdenticallyTwice)
{
    auto p = randomProgram(static_cast<std::uint64_t>(GetParam()));
    vm::Executor e1(p), e2(p);
    e1.run(1'000'000);
    e2.run(1'000'000);
    ASSERT_TRUE(e1.halted());
    EXPECT_EQ(e1.instsExecuted(), e2.instsExecuted());
    EXPECT_EQ(e1.printed(), e2.printed());
    for (int r = 0; r < NumGprs; ++r)
        EXPECT_EQ(e1.gpr(static_cast<RegId>(r)),
                  e2.gpr(static_cast<RegId>(r)));
}

TEST_P(RandomProgram, CommitsIdenticallyAcrossConfigs)
{
    auto p = randomProgram(static_cast<std::uint64_t>(GetParam()));
    SimResult a = run(p, config::baseline(1));
    SimResult b = run(p, config::decoupled(2, 1));
    SimResult c = run(p, config::decoupledOptimized(2, 2, 4));
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.committed, c.committed);
    EXPECT_GT(a.committed, 0u);
}

TEST_P(RandomProgram, SweepMatchesConsecutiveSerialRuns)
{
    // Determinism is thread-count- and repetition-invariant: a
    // parallel sweep over any builder-generated program returns the
    // same committed-instruction count and final stats as two
    // consecutive serial runs.
    auto p = std::make_shared<const prog::Program>(
        randomProgram(static_cast<std::uint64_t>(GetParam())));
    const config::MachineConfig cfgs[] = {
        config::baseline(2), config::decoupled(2, 1),
        config::decoupledOptimized(3, 2)};

    SweepRunner sweep(4);
    for (const config::MachineConfig &cfg : cfgs)
        sweep.submit(p, cfg);
    std::vector<SimResult> swept = sweep.collect();
    ASSERT_EQ(swept.size(), 3u);

    for (std::size_t i = 0; i < 3; ++i) {
        SimResult s1 = run(*p, cfgs[i]);
        SimResult s2 = run(*p, cfgs[i]);
        EXPECT_EQ(swept[i].committed, s1.committed) << i;
        EXPECT_EQ(s1.committed, s2.committed) << i;
        EXPECT_EQ(swept[i].cycles, s1.cycles) << i;
        EXPECT_EQ(s1.cycles, s2.cycles) << i;
        EXPECT_EQ(swept[i].ipc, s1.ipc) << i;
        EXPECT_EQ(swept[i].l1Accesses, s1.l1Accesses) << i;
        EXPECT_EQ(swept[i].l2Accesses, s1.l2Accesses) << i;
        EXPECT_EQ(swept[i].lvcAccesses, s1.lvcAccesses) << i;
        EXPECT_EQ(swept[i].lsqForwards, s1.lsqForwards) << i;
        EXPECT_EQ(swept[i].lvaqForwards, s1.lvaqForwards) << i;
    }
}

TEST_P(RandomProgram, OracleClassifierNeverMissteers)
{
    auto p = randomProgram(static_cast<std::uint64_t>(GetParam()));
    SimResult r = run(p, config::decoupled(2, 2));
    EXPECT_EQ(r.missteered, 0u);
    EXPECT_DOUBLE_EQ(r.classifierAccuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Range(1, 13));

// ---- Configuration-sweep monotonicity properties ----

struct PortPair
{
    int fewer;
    int more;
};

class MorePortsProperty : public ::testing::TestWithParam<PortPair>
{
};

TEST_P(MorePortsProperty, MoreL1PortsNeverHurtMuch)
{
    auto [fewer, more] = GetParam();
    workloads::WorkloadParams wp;
    wp.scale = workloads::find("li")->defaultScale / 4;
    auto p = workloads::build("li", wp);
    SimResult a = run(p, config::baseline(fewer));
    SimResult b = run(p, config::baseline(more));
    // More ports add bandwidth but also perturb second-order timing:
    // stores commit (and leave the LSQ) sooner, so some loads lose
    // their 1-cycle forwarding source and pay the 2-cycle cache hit
    // instead -- the same store/load interaction the paper describes
    // for su2cor in Section 4.3. Allow a few percent for that.
    EXPECT_GE(b.ipc, a.ipc * 0.97)
        << fewer << " -> " << more << " ports";
}

INSTANTIATE_TEST_SUITE_P(Pairs, MorePortsProperty,
                         ::testing::Values(PortPair{1, 2},
                                           PortPair{2, 3},
                                           PortPair{3, 4},
                                           PortPair{4, 8},
                                           PortPair{8, 16}));

class LvcSizeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LvcSizeProperty, BiggerLvcDoesNotRaiseMissRate)
{
    int kb = GetParam();
    workloads::WorkloadParams wp;
    wp.scale = workloads::find("gcc")->defaultScale / 4;
    auto p = workloads::build("gcc", wp);

    config::MachineConfig small = config::decoupled(3, 2);
    small.lvc.sizeBytes = static_cast<std::uint32_t>(kb) * 1024;
    SimResult a = run(p, small);

    config::MachineConfig big = config::decoupled(3, 2);
    big.lvc.sizeBytes = static_cast<std::uint32_t>(kb) * 2048;
    SimResult b = run(p, big);

    // Direct-mapped caches are not strictly inclusive, but on the
    // stack access pattern doubling the LVC must not hurt noticeably.
    EXPECT_LE(b.lvcMissRate, a.lvcMissRate + 0.002) << kb << "KB";
}

INSTANTIATE_TEST_SUITE_P(Sizes, LvcSizeProperty,
                         ::testing::Values(1, 2, 4));

class CombiningDegreeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CombiningDegreeProperty, HigherDegreeNeverHurtsPortBound)
{
    int degree = GetParam();
    workloads::WorkloadParams wp;
    wp.scale = workloads::find("vortex")->defaultScale / 4;
    auto p = workloads::build("vortex", wp);

    config::MachineConfig lo = config::decoupled(3, 1);
    lo.combining = degree;
    config::MachineConfig hi = config::decoupled(3, 1);
    hi.combining = degree * 2;
    SimResult a = run(p, lo);
    SimResult b = run(p, hi);
    EXPECT_GE(b.ipc, a.ipc * 0.995) << "degree " << degree;
}

INSTANTIATE_TEST_SUITE_P(Degrees, CombiningDegreeProperty,
                         ::testing::Values(1, 2, 4));

TEST(Properties, CycleCountsDeterministicAcrossRepeats)
{
    for (const char *name : {"go", "swim"}) {
        workloads::WorkloadParams wp;
        wp.scale = workloads::find(name)->defaultScale / 8;
        auto p = workloads::build(name, wp);
        SimResult a = run(p, config::decoupledOptimized(3, 2));
        SimResult b = run(p, config::decoupledOptimized(3, 2));
        EXPECT_EQ(a.cycles, b.cycles) << name;
        EXPECT_EQ(a.l2Accesses, b.l2Accesses) << name;
    }
}

TEST(Properties, MemAccessesNeverExceedL2Accesses)
{
    workloads::WorkloadParams wp;
    wp.scale = workloads::find("swim")->defaultScale / 4;
    auto p = workloads::build("swim", wp);
    SimResult r = run(p, config::decoupled(2, 2));
    EXPECT_LE(r.memAccesses, r.l2Accesses);
}

TEST_P(RandomProgram, DisassemblyRoundTripsExactly)
{
    auto p = randomProgram(static_cast<std::uint64_t>(GetParam()));
    std::string text = "main:\n";
    for (std::uint32_t i = 0; i < p.textSize(); ++i)
        text += isa::disassemble(p.fetch(i)) + "\n";
    prog::Program p2 = prog::assemble(text);
    ASSERT_EQ(p2.textSize(), p.textSize());
    for (std::uint32_t i = 0; i < p.textSize(); ++i)
        EXPECT_EQ(p2.fetchRaw(i), p.fetchRaw(i)) << "at " << i;
}

TEST(Properties, WiderMachineNeverSlowerOnWorkloads)
{
    workloads::WorkloadParams wp;
    wp.scale = workloads::find("perl")->defaultScale / 4;
    auto p = workloads::build("perl", wp);
    config::MachineConfig narrow = config::baseline(4);
    narrow.fetchWidth = narrow.issueWidth = narrow.commitWidth = 4;
    SimResult a = run(p, narrow);
    SimResult b = run(p, config::baseline(4)); // 16-wide
    EXPECT_GE(b.ipc, a.ipc * 0.995);
}
