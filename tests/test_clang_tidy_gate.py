#!/usr/bin/env python3
"""Unit tests for tools/clang_tidy_gate.py's pure functions.

clang-tidy itself is not required: these pin the diagnostic parser
(normalization, repo-relative paths, multi-check lines, noise
rejection), the baseline round-trip, and the new/fixed gate logic.
Stdlib only; run directly or via ctest.
"""

import importlib.util
import os
import tempfile
import unittest

_TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, "tools", "clang_tidy_gate.py")
_spec = importlib.util.spec_from_file_location("clang_tidy_gate",
                                               _TOOL)
ct = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(ct)

ROOT = "/repo"


class ParseDiagnostics(unittest.TestCase):
    def test_extracts_file_and_check(self):
        out = ("/repo/src/core/classifier.cc:42:7: warning: "
               "use nullptr [modernize-use-nullptr]")
        self.assertEqual(
            ct.parse_diagnostics(out, ROOT),
            {"src/core/classifier.cc:modernize-use-nullptr"})

    def test_line_numbers_are_dropped(self):
        out = ("/repo/src/a.cc:1:1: warning: x [bugprone-foo]\n"
               "/repo/src/a.cc:99:5: warning: y [bugprone-foo]")
        self.assertEqual(ct.parse_diagnostics(out, ROOT),
                         {"src/a.cc:bugprone-foo"})

    def test_multi_check_lines_split(self):
        out = ("/repo/src/a.cc:3:1: warning: z "
               "[bugprone-foo,cert-dcl03-c]")
        self.assertEqual(
            ct.parse_diagnostics(out, ROOT),
            {"src/a.cc:bugprone-foo", "src/a.cc:cert-dcl03-c"})

    def test_errors_also_count(self):
        out = ("/repo/src/a.cc:3:1: error: bad "
               "[clang-diagnostic-error]")
        self.assertEqual(ct.parse_diagnostics(out, ROOT),
                         {"src/a.cc:clang-diagnostic-error"})

    def test_paths_outside_repo_dropped(self):
        out = ("/usr/include/c++/13/vector:88:3: warning: w "
               "[bugprone-foo]")
        self.assertEqual(ct.parse_diagnostics(out, ROOT), set())

    def test_non_diagnostic_noise_ignored(self):
        out = ("Suppressed 12 warnings (12 in non-user code).\n"
               "Use -header-filter=.* to display errors...\n"
               "12 warnings generated.\n"
               "note: this is a note without a check tag")
        self.assertEqual(ct.parse_diagnostics(out, ROOT), set())


class BaselineRoundTrip(unittest.TestCase):
    def test_write_then_read(self):
        entries = {"src/b.cc:bugprone-foo", "src/a.cc:cert-x"}
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "baseline.txt")
            ct.write_baseline(path, entries)
            self.assertEqual(ct.read_baseline(path), entries)
            # Comments and blank lines survive as non-entries.
            with open(path) as f:
                self.assertTrue(f.readline().startswith("#"))

    def test_missing_baseline_is_empty(self):
        self.assertEqual(ct.read_baseline("/nonexistent/x.txt"),
                         set())


class GateLogic(unittest.TestCase):
    def test_clean_tree_empty_baseline(self):
        self.assertEqual(ct.gate(set(), set()), (set(), set()))

    def test_new_finding_flagged(self):
        new, fixed = ct.gate({"src/a.cc:bugprone-foo"}, set())
        self.assertEqual(new, {"src/a.cc:bugprone-foo"})
        self.assertEqual(fixed, set())

    def test_baselined_finding_passes(self):
        base = {"src/a.cc:bugprone-foo"}
        self.assertEqual(ct.gate(base, base), (set(), set()))

    def test_fixed_finding_reported(self):
        new, fixed = ct.gate(set(), {"src/a.cc:bugprone-foo"})
        self.assertEqual(new, set())
        self.assertEqual(fixed, {"src/a.cc:bugprone-foo"})


if __name__ == "__main__":
    unittest.main()
