/**
 * @file
 * Golden-value semantics tests for every MISA opcode, driven through
 * the text assembler and the functional executor: each case runs a
 * tiny program and checks the PRINTed results.
 */

#include <gtest/gtest.h>

#include "prog/asm_parser.hh"
#include "util/types.hh"
#include "vm/executor.hh"

using namespace ddsim;

namespace {

/** Assemble, run, and return the PRINT output. */
std::vector<Word>
runAsm(const std::string &body)
{
    prog::Program p = prog::assemble("main:\n" + body + "    halt\n");
    vm::Executor exec(p);
    exec.run(100000);
    EXPECT_TRUE(exec.halted());
    return exec.printed();
}

Word
runOne(const std::string &body)
{
    auto out = runAsm(body);
    EXPECT_EQ(out.size(), 1u);
    return out.empty() ? 0xdeadbeef : out[0];
}

SWord
runOneS(const std::string &body)
{
    return static_cast<SWord>(runOne(body));
}

} // namespace

// ---- Integer register-register ----

TEST(OpSemantics, Add)
{
    EXPECT_EQ(runOne("li t0, 40\n li t1, 2\n add t2, t0, t1\n"
                     "print t2\n"),
              42u);
}

TEST(OpSemantics, AddWrapsOnOverflow)
{
    EXPECT_EQ(runOne("li t0, 0x7fffffff\n li t1, 1\n"
                     "add t2, t0, t1\n print t2\n"),
              0x80000000u);
}

TEST(OpSemantics, Sub)
{
    EXPECT_EQ(runOneS("li t0, 10\n li t1, 13\n sub t2, t0, t1\n"
                      "print t2\n"),
              -3);
}

TEST(OpSemantics, Mul)
{
    EXPECT_EQ(runOneS("li t0, -6\n li t1, 7\n mul t2, t0, t1\n"
                      "print t2\n"),
              -42);
}

TEST(OpSemantics, DivTruncatesTowardZero)
{
    EXPECT_EQ(runOneS("li t0, -7\n li t1, 2\n div t2, t0, t1\n"
                      "print t2\n"),
              -3);
    EXPECT_EQ(runOne("li t0, 7\n li t1, 2\n div t2, t0, t1\n"
                     "print t2\n"),
              3u);
}

TEST(OpSemantics, Logicals)
{
    EXPECT_EQ(runOne("li t0, 0xf0f0\n li t1, 0x0ff0\n"
                     "and t2, t0, t1\n print t2\n"),
              0x00f0u);
    EXPECT_EQ(runOne("li t0, 0xf0f0\n li t1, 0x0ff0\n"
                     "or t2, t0, t1\n print t2\n"),
              0xfff0u);
    EXPECT_EQ(runOne("li t0, 0xf0f0\n li t1, 0x0ff0\n"
                     "xor t2, t0, t1\n print t2\n"),
              0xff00u);
    EXPECT_EQ(runOne("li t0, 0\n li t1, 0\n nor t2, t0, t1\n"
                     "print t2\n"),
              0xffffffffu);
}

TEST(OpSemantics, SetLessThan)
{
    EXPECT_EQ(runOne("li t0, -1\n li t1, 1\n slt t2, t0, t1\n"
                     "print t2\n"),
              1u);
    // Unsigned: 0xffffffff is large.
    EXPECT_EQ(runOne("li t0, -1\n li t1, 1\n sltu t2, t0, t1\n"
                     "print t2\n"),
              0u);
}

TEST(OpSemantics, VariableShifts)
{
    EXPECT_EQ(runOne("li t0, 1\n li t1, 5\n sllv t2, t0, t1\n"
                     "print t2\n"),
              32u);
    EXPECT_EQ(runOne("li t0, 0x80000000\n li t1, 31\n"
                     "srlv t2, t0, t1\n print t2\n"),
              1u);
    EXPECT_EQ(runOneS("li t0, -32\n li t1, 4\n srav t2, t0, t1\n"
                      "print t2\n"),
              -2);
    // Shift amounts use only the low 5 bits.
    EXPECT_EQ(runOne("li t0, 1\n li t1, 33\n sllv t2, t0, t1\n"
                     "print t2\n"),
              2u);
}

TEST(OpSemantics, ImmediateShifts)
{
    EXPECT_EQ(runOne("li t0, 3\n sll t1, t0, 4\n print t1\n"), 48u);
    EXPECT_EQ(runOne("li t0, 0x100\n srl t1, t0, 4\n print t1\n"),
              16u);
    EXPECT_EQ(runOneS("li t0, -256\n sra t1, t0, 4\n print t1\n"),
              -16);
}

// ---- Integer immediates ----

TEST(OpSemantics, AddiSignExtends)
{
    EXPECT_EQ(runOneS("li t0, 5\n addi t1, t0, -9\n print t1\n"), -4);
}

TEST(OpSemantics, LogicalImmediatesZeroExtend)
{
    EXPECT_EQ(runOne("li t0, -1\n andi t1, t0, 0xff00\n print t1\n"),
              0xff00u);
    EXPECT_EQ(runOne("li t0, 0\n ori t1, t0, 0xffff\n print t1\n"),
              0xffffu);
    EXPECT_EQ(runOne("li t0, 0xffff\n xori t1, t0, 0xff00\n"
                     "print t1\n"),
              0x00ffu);
}

TEST(OpSemantics, SltiAndLui)
{
    EXPECT_EQ(runOne("li t0, -5\n slti t1, t0, 0\n print t1\n"), 1u);
    EXPECT_EQ(runOne("lui t0, 0xabcd\n print t0\n"), 0xabcd0000u);
}

// ---- Memory ----

TEST(OpSemantics, WordRoundTrip)
{
    EXPECT_EQ(runOne(".data\nbuf: .space 16\n.text\n"
                     "la t0, buf\n li t1, 0x12345678\n"
                     "sw t1, 8(t0)\n lw t2, 8(t0)\n print t2\n"),
              0x12345678u);
}

TEST(OpSemantics, ByteSignedAndUnsigned)
{
    EXPECT_EQ(runOneS(".data\nbuf: .space 4\n.text\n"
                      "la t0, buf\n li t1, 0x80\n sb t1, 0(t0)\n"
                      "lb t2, 0(t0)\n print t2\n"),
              -128);
    EXPECT_EQ(runOne(".data\nbuf: .space 4\n.text\n"
                     "la t0, buf\n li t1, 0x80\n sb t1, 0(t0)\n"
                     "lbu t2, 0(t0)\n print t2\n"),
              128u);
}

TEST(OpSemantics, NegativeOffsets)
{
    EXPECT_EQ(runOne(".data\nbuf: .space 32\n.text\n"
                     "la t0, buf\n addi t0, t0, 16\n"
                     "li t1, 77\n sw t1, -8(t0)\n"
                     "lw t2, -8(t0)\n print t2\n"),
              77u);
}

TEST(OpSemantics, DoubleRoundTrip)
{
    EXPECT_EQ(runOne(".data\nbuf: .align 8\n .space 16\n.text\n"
                     "la t0, buf\n li t1, 3\n cvt.d.w f1, t1\n"
                     "sd f1, 0(t0)\n ld f2, 0(t0)\n"
                     "cvt.w.d t2, f2\n print t2\n"),
              3u);
}

// ---- Branches ----

TEST(OpSemantics, BranchTakenAndNot)
{
    // beq taken.
    EXPECT_EQ(runOne("li t0, 5\n li t1, 5\n li t2, 0\n"
                     "beq t0, t1, yes\n li t2, 1\n"
                     "yes: print t2\n"),
              0u);
    // bne not taken.
    EXPECT_EQ(runOne("li t0, 5\n li t1, 5\n li t2, 0\n"
                     "bne t0, t1, yes2\n li t2, 1\n"
                     "yes2: print t2\n"),
              1u);
}

TEST(OpSemantics, SignBranches)
{
    EXPECT_EQ(runOne("li t0, 0\n li t2, 0\n blez t0, a\n li t2, 1\n"
                     "a: print t2\n"),
              0u); // 0 <= 0: taken
    EXPECT_EQ(runOne("li t0, 0\n li t2, 0\n bgtz t0, b\n li t2, 1\n"
                     "b: print t2\n"),
              1u); // 0 > 0 false: not taken
    EXPECT_EQ(runOne("li t0, -3\n li t2, 0\n bltz t0, c\n li t2, 1\n"
                     "c: print t2\n"),
              0u);
    EXPECT_EQ(runOne("li t0, 0\n li t2, 0\n bgez t0, d\n li t2, 1\n"
                     "d: print t2\n"),
              0u);
}

TEST(OpSemantics, JalrIndirectCall)
{
    // Build a function-pointer call: la + jalr.
    EXPECT_EQ(runOne("j start\n"
                     "fn: li v0, 99\n jr ra\n"
                     "start: la t0, 0x400004\n" // byte addr of fn
                     "jalr ra, t0\n print v0\n"),
              99u);
}

// ---- Floating point ----

TEST(OpSemantics, FpArithmetic)
{
    EXPECT_EQ(runOne("li t0, 9\n cvt.d.w f1, t0\n"
                     "li t1, 4\n cvt.d.w f2, t1\n"
                     "sub.d f3, f1, f2\n"    // 5.0
                     "mul.d f4, f3, f3\n"    // 25.0
                     "div.d f5, f4, f2\n"    // 6.25
                     "cvt.w.d t2, f5\n print t2\n"),
              6u);
}

TEST(OpSemantics, FpMoveNegCompare)
{
    EXPECT_EQ(runOneS("li t0, 8\n cvt.d.w f1, t0\n"
                      "neg.d f2, f1\n mov.d f3, f2\n"
                      "cvt.w.d t1, f3\n print t1\n"),
              -8);
    EXPECT_EQ(runOne("li t0, 1\n cvt.d.w f1, t0\n"
                     "li t1, 2\n cvt.d.w f2, t1\n"
                     "c.lt.d t2, f1, f2\n print t2\n"),
              1u);
    EXPECT_EQ(runOne("li t0, 2\n cvt.d.w f1, t0\n"
                     "c.le.d t2, f1, f1\n print t2\n"),
              1u);
    EXPECT_EQ(runOne("li t0, 2\n cvt.d.w f1, t0\n"
                     "li t1, 3\n cvt.d.w f2, t1\n"
                     "c.eq.d t2, f1, f2\n print t2\n"),
              0u);
}

// ---- Misc ----

TEST(OpSemantics, NopChangesNothing)
{
    EXPECT_EQ(runOne("li t0, 7\n nop\n nop\n print t0\n"), 7u);
}

TEST(OpSemantics, PrintOrderIsProgramOrder)
{
    auto out = runAsm("li t0, 1\n print t0\n li t0, 2\n print t0\n"
                      "li t0, 3\n print t0\n");
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 1u);
    EXPECT_EQ(out[1], 2u);
    EXPECT_EQ(out[2], 3u);
}

TEST(OpSemantics, MovePseudo)
{
    EXPECT_EQ(runOne("li t0, 123\n move t1, t0\n print t1\n"), 123u);
}
