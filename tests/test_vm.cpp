/**
 * @file
 * Functional executor tests: memory semantics, arithmetic, control
 * flow, calling convention, DynInst annotations (effective address,
 * oracle stack classification, base-register versions) and the
 * StreamStats accumulator.
 */

#include <gtest/gtest.h>

#include "prog/builder.hh"
#include "util/log.hh"
#include "vm/executor.hh"
#include "vm/memory.hh"
#include "vm/trace.hh"

using namespace ddsim;
using namespace ddsim::prog;
using namespace ddsim::vm;
namespace reg = ddsim::isa::reg;
using ddsim::isa::OpCode;

TEST(SparseMemory, ByteAndWordRoundTrip)
{
    SparseMemory m;
    m.writeWord(0x1000, 0x11223344);
    EXPECT_EQ(m.readWord(0x1000), 0x11223344u);
    // Little-endian byte order.
    EXPECT_EQ(m.readByte(0x1000), 0x44);
    EXPECT_EQ(m.readByte(0x1003), 0x11);
    m.writeByte(0x1001, 0xff);
    EXPECT_EQ(m.readWord(0x1000), 0x1122ff44u);
}

TEST(SparseMemory, UntouchedMemoryReadsZero)
{
    SparseMemory m;
    EXPECT_EQ(m.readWord(0x7fff0000), 0u);
    EXPECT_EQ(m.readByte(123), 0u);
}

TEST(SparseMemory, DoubleCrossesPageBoundary)
{
    SparseMemory m;
    Addr addr = SparseMemory::PageBytes - 4;
    m.writeDouble(addr, 3.14159);
    EXPECT_DOUBLE_EQ(m.readDouble(addr), 3.14159);
}

TEST(SparseMemory, UnalignedWordIsFatal)
{
    setQuiet(true);
    SparseMemory m;
    EXPECT_THROW(m.readWord(0x1001), FatalError);
    EXPECT_THROW(m.writeWord(0x1002, 1), FatalError);
}

TEST(SparseMemory, SparseAllocation)
{
    SparseMemory m;
    m.writeByte(0, 1);
    m.writeByte(0x7000'0000, 1);
    EXPECT_EQ(m.pagesAllocated(), 2u);
}

namespace {

/** Build, run to halt and return the executor. */
std::unique_ptr<Executor>
runProgram(Program &p, std::uint64_t maxInsts = 100000)
{
    auto exec = std::make_unique<Executor>(p);
    exec->run(maxInsts);
    EXPECT_TRUE(exec->halted()) << "program did not halt";
    return exec;
}

} // namespace

TEST(Executor, ArithmeticBasics)
{
    ProgramBuilder b("t");
    b.li(reg::t0, 21);
    b.li(reg::t1, 2);
    b.mul(reg::t2, reg::t0, reg::t1);
    b.print(reg::t2);            // 42
    b.sub(reg::t3, reg::t0, reg::t1);
    b.print(reg::t3);            // 19
    b.div(reg::t4, reg::t0, reg::t1);
    b.print(reg::t4);            // 10
    b.li(reg::t5, -7);
    b.sra(reg::t6, reg::t5, 1);
    b.print(reg::t6);            // -4 (arithmetic shift)
    b.halt();
    Program p = b.finish();
    auto exec = runProgram(p);
    ASSERT_EQ(exec->printed().size(), 4u);
    EXPECT_EQ(exec->printed()[0], 42u);
    EXPECT_EQ(exec->printed()[1], 19u);
    EXPECT_EQ(exec->printed()[2], 10u);
    EXPECT_EQ(static_cast<SWord>(exec->printed()[3]), -4);
}

TEST(Executor, DivByZeroIsZero)
{
    ProgramBuilder b("t");
    b.li(reg::t0, 5);
    b.div(reg::t1, reg::t0, reg::zero);
    b.print(reg::t1);
    b.halt();
    Program p = b.finish();
    auto exec = runProgram(p);
    EXPECT_EQ(exec->printed()[0], 0u);
}

TEST(Executor, ZeroRegisterIsImmutable)
{
    ProgramBuilder b("t");
    b.addi(reg::zero, reg::zero, 99);
    b.print(reg::zero);
    b.halt();
    Program p = b.finish();
    auto exec = runProgram(p);
    EXPECT_EQ(exec->printed()[0], 0u);
}

TEST(Executor, LiLargeAndNegativeValues)
{
    ProgramBuilder b("t");
    b.li(reg::t0, 0x12345678);
    b.print(reg::t0);
    b.li(reg::t1, -100000);
    b.print(reg::t1);
    b.halt();
    Program p = b.finish();
    auto exec = runProgram(p);
    EXPECT_EQ(exec->printed()[0], 0x12345678u);
    EXPECT_EQ(static_cast<SWord>(exec->printed()[1]), -100000);
}

TEST(Executor, LoadStoreBytesAndWords)
{
    ProgramBuilder b("t");
    Addr buf = b.dataWords(2);
    b.la(reg::t0, buf);
    b.li(reg::t1, -2);             // 0xfffffffe
    b.sw(reg::t1, 0, reg::t0);
    b.lb(reg::t2, 0, reg::t0);     // sign-extended 0xfe -> -2
    b.print(reg::t2);
    b.lbu(reg::t3, 0, reg::t0);    // zero-extended -> 254
    b.print(reg::t3);
    b.li(reg::t4, 0xab);
    b.sb(reg::t4, 5, reg::t0);     // second word, byte 1
    b.lw(reg::t5, 4, reg::t0);
    b.print(reg::t5);
    b.halt();
    Program p = b.finish();
    auto exec = runProgram(p);
    EXPECT_EQ(static_cast<SWord>(exec->printed()[0]), -2);
    EXPECT_EQ(exec->printed()[1], 254u);
    EXPECT_EQ(exec->printed()[2], 0xab00u);
}

TEST(Executor, FloatingPoint)
{
    ProgramBuilder b("t");
    Addr d = b.dataDouble(2.5);
    b.la(reg::t0, d);
    b.ld(1, 0, reg::t0);
    b.li(reg::t1, 4);
    b.cvtDW(2, reg::t1);          // f2 = 4.0
    b.mulD(3, 1, 2);              // 10.0
    b.addD(3, 3, 2);              // 14.0
    b.divD(4, 3, 2);              // 3.5
    b.cvtWD(reg::t2, 4);          // 3
    b.print(reg::t2);
    b.cLtD(reg::t3, 2, 3);        // 4.0 < 14.0 -> 1
    b.print(reg::t3);
    b.negD(5, 4);
    b.cvtWD(reg::t4, 5);          // -3
    b.print(reg::t4);
    b.halt();
    Program p = b.finish();
    auto exec = runProgram(p);
    EXPECT_EQ(exec->printed()[0], 3u);
    EXPECT_EQ(exec->printed()[1], 1u);
    EXPECT_EQ(static_cast<SWord>(exec->printed()[2]),
              -3);
}

TEST(Executor, FibonacciLoop)
{
    ProgramBuilder b("t");
    b.li(reg::t0, 0);   // fib(0)
    b.li(reg::t1, 1);   // fib(1)
    b.li(reg::t2, 10);  // count
    Label loop = b.here();
    b.add(reg::t3, reg::t0, reg::t1);
    b.move(reg::t0, reg::t1);
    b.move(reg::t1, reg::t3);
    b.addi(reg::t2, reg::t2, -1);
    b.bgtz(reg::t2, loop);
    b.print(reg::t1);   // fib(11) = 89
    b.halt();
    Program p = b.finish();
    auto exec = runProgram(p);
    EXPECT_EQ(exec->printed()[0], 89u);
}

TEST(Executor, RecursiveFactorialWithFrames)
{
    ProgramBuilder b("t");
    Label main = b.newLabel("main");
    Label fact = b.newLabel("fact");

    b.bind(main);
    b.li(reg::a0, 6);
    b.jal(fact);
    b.print(reg::v0);     // 720
    b.halt();

    b.bind(fact);
    Label rec = b.newLabel();
    b.bgtz(reg::a0, rec);
    b.li(reg::v0, 1);
    b.ret();
    b.bind(rec);
    FrameSpec f;
    f.localWords = 1;
    f.savedRegs = {reg::s0};
    b.prologue(f);
    b.move(reg::s0, reg::a0);
    b.addi(reg::a0, reg::a0, -1);
    b.jal(fact);
    b.mul(reg::v0, reg::v0, reg::s0);
    b.epilogue(f);

    Program p = b.finish();
    p.setEntry(p.symbol("main"));
    auto exec = runProgram(p);
    EXPECT_EQ(exec->printed()[0], 720u);
}

TEST(Executor, ReturnFromMainHalts)
{
    // A program whose entry returns via the sentinel ra.
    ProgramBuilder b("t");
    b.li(reg::v0, 5);
    b.ret();
    Program p = b.finish();
    auto exec = runProgram(p);
    EXPECT_TRUE(exec->halted());
    EXPECT_EQ(exec->gpr(reg::v0), 5u);
}

TEST(Executor, DynInstMemAnnotations)
{
    ProgramBuilder b("t");
    b.addi(reg::sp, reg::sp, -16);
    b.sw(reg::t0, 4, reg::sp, true);  // stack store, marked local
    Addr g = b.dataWord(7);
    b.la(reg::t1, g);
    b.lw(reg::t2, 0, reg::t1);        // global load
    b.halt();
    Program p = b.finish();
    Executor exec(p);

    DynInst adj = exec.step();
    EXPECT_EQ(adj.frameAllocBytes(), 16u);

    DynInst st = exec.step();
    EXPECT_TRUE(st.isStore());
    EXPECT_EQ(st.effAddr, layout::StackBase - 16 + 4);
    EXPECT_TRUE(st.stackAccess);
    EXPECT_TRUE(st.inst.localHint);
    EXPECT_EQ(st.accessSize, 4);

    // Skip over the la expansion (1 or 2 instructions) to the load.
    DynInst ld{};
    bool foundLoad = false;
    while (!exec.halted()) {
        ld = exec.step();
        if (ld.isLoad()) {
            foundLoad = true;
            break;
        }
    }
    ASSERT_TRUE(foundLoad);
    EXPECT_TRUE(ld.isLoad());
    EXPECT_EQ(ld.effAddr, g);
    EXPECT_FALSE(ld.stackAccess);
    EXPECT_FALSE(ld.inst.localHint);
}

TEST(Executor, BaseVersionTracksSpWrites)
{
    ProgramBuilder b("t");
    b.sw(reg::t0, 0, reg::sp, true);   // version A
    b.sw(reg::t0, 4, reg::sp, true);   // version A
    b.addi(reg::sp, reg::sp, -8);      // sp changes
    b.sw(reg::t0, 0, reg::sp, true);   // version B
    b.halt();
    Program p = b.finish();
    Executor exec(p);
    DynInst s1 = exec.step();
    DynInst s2 = exec.step();
    exec.step();
    DynInst s3 = exec.step();
    EXPECT_EQ(s1.baseVersion, s2.baseVersion);
    EXPECT_NE(s2.baseVersion, s3.baseVersion);
}

TEST(Executor, StepAfterHaltPanics)
{
    setQuiet(true);
    ProgramBuilder b("t");
    b.halt();
    Program p = b.finish();
    Executor exec(p);
    exec.step();
    EXPECT_TRUE(exec.halted());
    EXPECT_THROW(exec.step(), PanicError);
}

TEST(Executor, DeterministicExecution)
{
    ProgramBuilder b("t");
    b.li(reg::t0, 1000);
    Label loop = b.here();
    b.addi(reg::t0, reg::t0, -1);
    b.bgtz(reg::t0, loop);
    b.halt();
    Program p = b.finish();

    Executor e1(p), e2(p);
    while (!e1.halted()) {
        DynInst a = e1.step();
        DynInst bi = e2.step();
        EXPECT_EQ(a.pcIdx, bi.pcIdx);
        EXPECT_EQ(a.effAddr, bi.effAddr);
    }
    EXPECT_TRUE(e2.halted());
    EXPECT_EQ(e1.instsExecuted(), e2.instsExecuted());
}

TEST(StreamStats, CountsMixAndFrames)
{
    ProgramBuilder b("t");
    Label main = b.newLabel("main");
    Label fn = b.newLabel("fn");
    b.bind(main);
    b.jal(fn);
    b.jal(fn);
    b.halt();
    b.bind(fn);
    FrameSpec f;
    f.localWords = 3;
    f.savedRegs = {reg::s0};
    b.prologue(f);       // 1 alloc of 5 words + 2 local stores
    b.loadLocal(reg::t0, 0);
    b.epilogue(f);
    Program p = b.finish();
    p.setEntry(p.symbol("main"));

    Executor exec(p);
    stats::Group root(nullptr, "");
    StreamStats ss(&root);
    while (!exec.halted())
        ss.record(exec.step());

    EXPECT_EQ(ss.calls.value(), 2u);
    EXPECT_EQ(ss.returns.value(), 2u);
    EXPECT_EQ(ss.frameWords.samples(), 2u);
    EXPECT_DOUBLE_EQ(ss.frameWords.mean(), 5.0);
    EXPECT_EQ(ss.localStores.value(), 4u);  // 2 saves x 2 calls
    EXPECT_EQ(ss.localLoads.value(), 6u);   // (1 + 2 restores) x 2
    EXPECT_DOUBLE_EQ(ss.meanStaticFrameWords(), 5.0);
    EXPECT_EQ(ss.staticFrames().size(), 1u);
    EXPECT_DOUBLE_EQ(ss.localLoadFrac(), 1.0);
    EXPECT_DOUBLE_EQ(ss.localStoreFrac(), 1.0);
}
