/**
 * @file
 * Memory hierarchy tests: latency accumulation through L1 -> L2 ->
 * memory, LVC wiring, and L2 bus traffic accounting.
 */

#include <gtest/gtest.h>

#include "config/presets.hh"
#include "mem/hierarchy.hh"
#include "stats/group.hh"
#include "util/log.hh"

using namespace ddsim;
using namespace ddsim::mem;

TEST(Hierarchy, BaselineHasNoLvc)
{
    stats::Group root(nullptr, "");
    auto cfg = config::baseline(2);
    Hierarchy h(&root, cfg);
    EXPECT_EQ(h.lvc(), nullptr);
}

TEST(Hierarchy, DecoupledHasLvc)
{
    stats::Group root(nullptr, "");
    auto cfg = config::decoupled(2, 2);
    Hierarchy h(&root, cfg);
    ASSERT_NE(h.lvc(), nullptr);
    EXPECT_EQ(h.lvc()->params().sizeBytes, 2048u);
    EXPECT_EQ(h.lvc()->params().assoc, 1u);
    EXPECT_EQ(h.lvc()->params().hitLatency, 1u);
}

TEST(Hierarchy, LatencyAccumulatesThroughLevels)
{
    stats::Group root(nullptr, "");
    auto cfg = config::baseline(2);
    Hierarchy h(&root, cfg);
    // Cold L1 miss -> L2 miss -> memory: 2 + 12 + 50.
    Cycle done = h.l1().access(0x5000, false, 0);
    EXPECT_EQ(done, 2u + 12u + 50u);
    // L1 hit afterwards: just 2 cycles.
    Cycle hit = h.l1().access(0x5000, false, 100);
    EXPECT_EQ(hit, 102u);
}

TEST(Hierarchy, L2HitServicesL1Miss)
{
    stats::Group root(nullptr, "");
    auto cfg = config::baseline(2);
    Hierarchy h(&root, cfg);
    h.l1().access(0x5000, false, 0); // fills both L1 and L2
    // Evict 0x5000 from L1 by filling its set (2-way, 512 sets,
    // 32B lines -> same set every 16 KB).
    h.l1().access(0x5000 + 16 * 1024, false, 100);
    h.l1().access(0x5000 + 32 * 1024, false, 200);
    EXPECT_FALSE(h.l1().probe(0x5000));
    // Re-access: L1 miss but L2 hit -> 2 + 12.
    Cycle done = h.l1().access(0x5000, false, 300);
    EXPECT_EQ(done, 300u + 2u + 12u);
}

TEST(Hierarchy, LvcMissesGoToSharedL2)
{
    stats::Group root(nullptr, "");
    auto cfg = config::decoupled(2, 2);
    Hierarchy h(&root, cfg);
    std::uint64_t before = h.l2BusTraffic();
    h.lvc()->access(layout::StackBase - 64, false, 0);
    EXPECT_EQ(h.l2BusTraffic(), before + 1);
    // LVC hit afterwards: 1-cycle, no L2 traffic.
    std::uint64_t traffic = h.l2BusTraffic();
    Cycle t = h.lvc()->access(layout::StackBase - 64, false, 100);
    EXPECT_EQ(t, 101u);
    EXPECT_EQ(h.l2BusTraffic(), traffic);
}

TEST(Hierarchy, SameLineInBothCachesIsIndependent)
{
    // With perfect classification this never happens, but the model
    // must keep the two level-1 caches independent.
    stats::Group root(nullptr, "");
    auto cfg = config::decoupled(2, 2);
    Hierarchy h(&root, cfg);
    Addr a = layout::StackBase - 128;
    h.l1().access(a, false, 0);
    EXPECT_TRUE(h.l1().probe(a));
    EXPECT_FALSE(h.lvc()->probe(a));
    h.lvc()->access(a, false, 100);
    EXPECT_TRUE(h.lvc()->probe(a));
}

TEST(Hierarchy, MshrCountIsConfigurable)
{
    stats::Group root(nullptr, "");
    auto cfg = config::baseline(2);
    cfg.l1.mshrs = 1;
    Hierarchy h(&root, cfg);
    // Two misses to different lines at the same time: the second must
    // be pushed back behind the first's completion (single MSHR).
    Cycle a = h.l1().access(0x0000, false, 0);
    Cycle b = h.l1().access(0x1000, false, 0);
    EXPECT_GT(b, a);

    auto cfg2 = config::baseline(2);
    cfg2.l1.mshrs = 8;
    stats::Group root2(nullptr, "");
    Hierarchy h2(&root2, cfg2);
    Cycle a2 = h2.l1().access(0x0000, false, 0);
    Cycle b2 = h2.l1().access(0x1000, false, 0);
    EXPECT_EQ(a2, b2); // both fills overlap fully
}

TEST(Hierarchy, ZeroMshrsRejected)
{
    setQuiet(true);
    auto cfg = config::baseline(2);
    cfg.l1.mshrs = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Hierarchy, FlushAllClearsEverything)
{
    stats::Group root(nullptr, "");
    auto cfg = config::decoupled(2, 2);
    Hierarchy h(&root, cfg);
    h.l1().access(0x5000, false, 0);
    h.lvc()->access(layout::StackBase - 64, false, 0);
    h.flushAll();
    EXPECT_FALSE(h.l1().probe(0x5000));
    EXPECT_FALSE(h.lvc()->probe(layout::StackBase - 64));
    EXPECT_FALSE(h.l2().probe(0x5000));
}
