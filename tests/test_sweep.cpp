/**
 * @file
 * SweepRunner determinism suite: a parallel sweep must be
 * indistinguishable from the serial loop it replaces — same results,
 * same order, for any worker count — plus in-order delivery,
 * per-job exception propagation, degenerate grids, the ThreadPool
 * primitive underneath, and thread-safety regression tests meant to
 * run under TSan (ctest label "sweep", -DDDSIM_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "config/presets.hh"
#include "sim/sweep.hh"
#include "util/log.hh"
#include "util/thread_pool.hh"
#include "workloads/common.hh"

using namespace ddsim;
using namespace ddsim::sim;

namespace {

std::shared_ptr<const prog::Program>
sharedWorkload(const char *name, std::uint64_t divisor = 16)
{
    workloads::WorkloadParams p;
    p.scale =
        std::max<std::uint64_t>(1, workloads::find(name)->defaultScale /
                                       divisor);
    return std::make_shared<const prog::Program>(
        workloads::build(name, p));
}

/** The 4-program x 6-config grid the determinism tests sweep. */
std::vector<SweepJob>
determinismGrid()
{
    static const char *names[] = {"go", "li", "vortex", "swim"};
    std::vector<config::MachineConfig> cfgs = {
        config::baseline(1),          config::baseline(2),
        config::decoupled(2, 1),      config::decoupled(3, 2),
        config::decoupledOptimized(2, 2),
        config::decoupledOptimized(3, 2)};
    std::vector<SweepJob> jobs;
    for (const char *name : names) {
        auto program = sharedWorkload(name);
        for (const config::MachineConfig &cfg : cfgs)
            jobs.push_back({program, cfg});
    }
    return jobs;
}

/**
 * Every stat a bench or test reads must match exactly — integers with
 * EXPECT_EQ and derived doubles bit-for-bit (identical computations on
 * identical inputs yield identical bits).
 */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.program, b.program);
    EXPECT_EQ(a.notation, b.notation);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.localLoads, b.localLoads);
    EXPECT_EQ(a.localStores, b.localStores);
    EXPECT_EQ(a.meanDynFrameWords, b.meanDynFrameWords);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l1MissRate, b.l1MissRate);
    EXPECT_EQ(a.lvcAccesses, b.lvcAccesses);
    EXPECT_EQ(a.lvcMisses, b.lvcMisses);
    EXPECT_EQ(a.lvcMissRate, b.lvcMissRate);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.lsqForwards, b.lsqForwards);
    EXPECT_EQ(a.lvaqForwards, b.lvaqForwards);
    EXPECT_EQ(a.lvaqFastForwards, b.lvaqFastForwards);
    EXPECT_EQ(a.lvaqCombined, b.lvaqCombined);
    EXPECT_EQ(a.lvaqLoads, b.lvaqLoads);
    EXPECT_EQ(a.lvaqSatisfiedFrac, b.lvaqSatisfiedFrac);
    EXPECT_EQ(a.classifierAccuracy, b.classifierAccuracy);
    EXPECT_EQ(a.missteered, b.missteered);
    EXPECT_EQ(a.statsText, b.statsText);
}

} // namespace

TEST(Sweep, MatchesSerialLoopForAnyWorkerCount)
{
    std::vector<SweepJob> jobs = determinismGrid();

    // The reference: the serial loop the sweep engine replaces.
    std::vector<SimResult> serial;
    for (const SweepJob &job : jobs)
        serial.push_back(run(*job.program, job.cfg, job.opts));

    for (unsigned workers : {1u, 2u, 8u}) {
        std::vector<SimResult> swept =
            SweepRunner::runAll(jobs, workers);
        ASSERT_EQ(swept.size(), serial.size()) << workers;
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " job=" + std::to_string(i));
            expectIdentical(swept[i], serial[i]);
        }
    }
}

TEST(Sweep, ResultsArriveInSubmissionOrder)
{
    // Mix long and short jobs so completion order differs from
    // submission order: results must still come back as submitted.
    auto heavy = sharedWorkload("vortex", 8);
    auto light = sharedWorkload("li", 64);

    SweepRunner sweep(4);
    sweep.submit(heavy, config::decoupledOptimized(3, 2));
    sweep.submit(light, config::baseline(1));
    sweep.submit(heavy, config::baseline(2));
    sweep.submit(light, config::decoupled(2, 1));
    std::vector<SimResult> results = sweep.collect();

    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].program, "vortex");
    EXPECT_EQ(results[0].notation, "(3+2)");
    EXPECT_EQ(results[1].program, "li");
    EXPECT_EQ(results[1].notation, "(1+0)");
    EXPECT_EQ(results[2].program, "vortex");
    EXPECT_EQ(results[2].notation, "(2+0)");
    EXPECT_EQ(results[3].program, "li");
    EXPECT_EQ(results[3].notation, "(2+1)");
}

TEST(Sweep, EmptyGridCollectsNothing)
{
    SweepRunner sweep(2);
    EXPECT_EQ(sweep.pending(), 0u);
    EXPECT_TRUE(sweep.collect().empty());
}

TEST(Sweep, SingleJobGrid)
{
    auto program = sharedWorkload("li");
    SweepRunner sweep(1);
    EXPECT_EQ(sweep.submit(program, config::baseline(2)), 0u);
    std::vector<SimResult> results = sweep.collect();
    ASSERT_EQ(results.size(), 1u);
    SimResult serial = run(*program, config::baseline(2));
    expectIdentical(results[0], serial);
}

TEST(Sweep, JobExceptionRethrownAtCollection)
{
    setQuiet(true);
    auto program = sharedWorkload("li");

    config::MachineConfig bad = config::baseline(2);
    bad.robSize = 0; // validate() rejects this inside the worker

    SweepRunner sweep(2);
    sweep.submit(program, config::baseline(1));
    sweep.submit(program, bad);
    sweep.submit(program, config::baseline(2));
    EXPECT_THROW(sweep.collect(), FatalError);
    setQuiet(false);

    // The failed grid is cleared: the runner is reusable afterwards.
    EXPECT_EQ(sweep.pending(), 0u);
    sweep.submit(program, config::baseline(1));
    EXPECT_EQ(sweep.collect().size(), 1u);
}

TEST(Sweep, EarliestOfSeveralFailuresWins)
{
    setQuiet(true);
    auto program = sharedWorkload("li", 64);

    config::MachineConfig badRob = config::baseline(2);
    badRob.robSize = 0;
    config::MachineConfig badLsq = config::baseline(2);
    badLsq.lsqSize = 0;

    SweepRunner sweep(2);
    sweep.submit(program, config::baseline(1));
    sweep.submit(program, badRob);
    sweep.submit(program, badLsq);
    try {
        sweep.collect();
        FAIL() << "collect() should have thrown";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("ROB"),
                  std::string::npos);
    }
    setQuiet(false);
}

TEST(Sweep, ReusableAcrossRounds)
{
    auto program = sharedWorkload("go", 64);
    SweepRunner sweep(2);

    sweep.submit(program, config::baseline(1));
    std::vector<SimResult> first = sweep.collect();
    ASSERT_EQ(first.size(), 1u);

    // Indices restart at 0 for the next grid.
    EXPECT_EQ(sweep.submit(program, config::baseline(2)), 0u);
    sweep.submit(program, config::decoupled(2, 2));
    std::vector<SimResult> second = sweep.collect();
    ASSERT_EQ(second.size(), 2u);
    EXPECT_EQ(second[0].notation, "(2+0)");
    EXPECT_EQ(second[1].notation, "(2+2)");
}

TEST(Sweep, ProgramCacheBuildsEachKeyOnce)
{
    ProgramCache cache;
    std::atomic<int> builds{0};
    auto builder = [&builds] {
        ++builds;
        workloads::WorkloadParams p;
        p.scale = 5;
        return workloads::build("li", p);
    };

    auto a = cache.get("li@5", builder);
    auto b = cache.get("li@5", builder);
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(a.get(), b.get()); // shared, not copied
    EXPECT_EQ(cache.size(), 1u);

    auto c = cache.get("li@5-again", builder);
    EXPECT_EQ(builds.load(), 2);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(Sweep, SharedProgramAcrossConcurrentRunsIsRaceFree)
{
    // One Program, many concurrent simulations: Program::fetch() must
    // be a pure read (decode happens at build time). Run enough jobs
    // through enough workers that TSan would see any mutation.
    auto program = sharedWorkload("gcc", 32);
    SweepRunner sweep(8);
    for (int i = 0; i < 16; ++i)
        sweep.submit(program, config::decoupledOptimized(2 + i % 3,
                                                         1 + i % 2));
    std::vector<SimResult> results = sweep.collect();
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_EQ(results[i].committed, results[0].committed);
}

TEST(Sweep, TraceCacheRecordsEachKeyOnceUnderContention)
{
    // Many threads request the trace for the same (program, cap) at
    // once: exactly one recording must happen (call_once), every
    // caller must get the same shared recording, and distinct caps
    // must get distinct recordings. Run under TSan via the "sweep"
    // label to catch any unsynchronized cache access.
    auto program = sharedWorkload("li", 32);
    TraceCache cache;
    ThreadPool pool(8);
    std::vector<std::shared_ptr<const vm::RecordedTrace>> got(32);
    parallelFor(pool, got.size(),
                [&cache, &program, &got](std::size_t i) {
                    // Even indices: full trace; odd: capped at 1000.
                    got[i] = cache.get(program, i % 2 ? 1000 : 0);
                });
    EXPECT_EQ(cache.size(), 2u);
    for (std::size_t i = 2; i < got.size(); ++i)
        EXPECT_EQ(got[i].get(), got[i - 2].get()) << i;
    EXPECT_NE(got[0].get(), got[1].get());
    EXPECT_EQ(got[1]->instCount(), 1000u);
    EXPECT_GT(got[0]->instCount(), got[1]->instCount());
}

TEST(Sweep, TraceSharingDoesNotChangeGridResults)
{
    // The headline replay guarantee at the sweep level: the same grid
    // with trace sharing off (every job executes the program live)
    // and on (one recording per program, shared replay) must produce
    // bit-identical results in the same order.
    std::vector<SweepJob> jobs = determinismGrid();

    SweepRunner live(4);
    live.setTraceSharing(false);
    for (const SweepJob &job : jobs)
        live.submit(job);
    std::vector<SimResult> liveResults = live.collect();

    SweepRunner shared(4); // shareTraces defaults to on
    for (const SweepJob &job : jobs)
        shared.submit(job);
    std::vector<SimResult> sharedResults = shared.collect();

    ASSERT_EQ(liveResults.size(), sharedResults.size());
    for (std::size_t i = 0; i < liveResults.size(); ++i) {
        SCOPED_TRACE("job=" + std::to_string(i));
        expectIdentical(sharedResults[i], liveResults[i]);
    }
}

TEST(Sweep, BatchedEngineMatchesPerPointResults)
{
    // The batched engine folds each program's column into one
    // runBatch trace pass; every lane must stay bit-identical to the
    // per-point serial reference, in submission order, for any worker
    // count.
    std::vector<SweepJob> jobs = determinismGrid();
    std::vector<SimResult> serial;
    for (const SweepJob &job : jobs)
        serial.push_back(run(*job.program, job.cfg, job.opts));

    for (unsigned workers : {1u, 4u}) {
        SweepRunner sweep(workers);
        for (SweepJob job : jobs) {
            job.opts.engine = Engine::Batched;
            sweep.submit(std::move(job));
        }
        std::vector<SimResult> batched = sweep.collect();
        ASSERT_EQ(batched.size(), serial.size()) << workers;
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " job=" + std::to_string(i));
            expectIdentical(batched[i], serial[i]);
        }
    }
}

TEST(Sweep, TraceCacheByteBudgetEvictsLeastRecentlyUsed)
{
    auto program = sharedWorkload("li", 32);
    auto bytesOf = [&program](std::uint64_t cap) {
        TraceCache probe;
        probe.get(program, cap);
        return probe.residentBytes();
    };
    const std::size_t big = bytesOf(2000);
    const std::size_t mid = bytesOf(1000);
    ASSERT_GT(big, mid);

    TraceCache cache;
    cache.setByteBudget(big + mid);
    auto t1 = cache.get(program, 2000);
    auto t2 = cache.get(program, 1000);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_LE(cache.residentBytes(), big + mid);

    // Touch t1, then insert a third trace that pushes the total over
    // the budget: the LRU entry (t2) must go, never the one just
    // requested, and t1 — recently used — must survive.
    EXPECT_EQ(cache.get(program, 2000).get(), t1.get());
    auto t3 = cache.get(program, 500);
    EXPECT_LE(cache.residentBytes(), big + mid);
    EXPECT_EQ(cache.recordings(), 3u);
    EXPECT_EQ(cache.get(program, 2000).get(), t1.get());
    EXPECT_EQ(cache.recordings(), 3u); // no re-record for t1

    // The evicted trace stays alive for holders of its shared_ptr and
    // a future touch re-records it.
    EXPECT_EQ(t2->instCount(), 1000u);
    auto t2again = cache.get(program, 1000);
    EXPECT_NE(t2again.get(), t2.get());
    EXPECT_EQ(cache.recordings(), 4u);
    EXPECT_EQ(t2again->instCount(), 1000u);
}

TEST(Sweep, TraceCacheSingleOverBudgetTraceStillWorks)
{
    // A budget smaller than any one trace must degrade to "keep only
    // the trace in hand", not fail.
    auto program = sharedWorkload("li", 32);
    TraceCache cache;
    cache.setByteBudget(1);
    auto t = cache.get(program, 1000);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->instCount(), 1000u);
    EXPECT_LE(cache.size(), 1u);
}

TEST(Sweep, TraceCacheBudgetDoesNotChangeGridResults)
{
    // A pathologically tight budget forces constant eviction and
    // re-recording mid-sweep; results must stay bit-identical to the
    // unbudgeted reference.
    std::vector<SweepJob> jobs = determinismGrid();
    std::vector<SimResult> serial;
    for (const SweepJob &job : jobs)
        serial.push_back(run(*job.program, job.cfg, job.opts));

    SweepRunner sweep(4);
    sweep.setTraceCacheBudget(1);
    for (const SweepJob &job : jobs)
        sweep.submit(job);
    std::vector<SimResult> swept = sweep.collect();
    ASSERT_EQ(swept.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("job=" + std::to_string(i));
        expectIdentical(swept[i], serial[i]);
    }
}

// ---- ThreadPool primitive ----

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, hits.size(),
                [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexError)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        parallelFor(pool, 64, [&ran](std::size_t i) {
            ++ran;
            if (i == 7 || i == 23)
                throw std::runtime_error("boom " + std::to_string(i));
        });
        FAIL() << "parallelFor should have thrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 7");
    }
    EXPECT_EQ(ran.load(), 64); // failures don't cancel other indices
}

TEST(ThreadPool, WaitIsIdempotentAndZeroTasksIsFine)
{
    ThreadPool pool(2);
    pool.wait();
    parallelFor(pool, 0, [](std::size_t) { FAIL(); });
    pool.wait();
    EXPECT_EQ(pool.size(), 2u);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_EQ(pool.size(), ThreadPool::defaultThreads());
    EXPECT_GE(pool.size(), 1u);
}

// ---- Thread-safety regressions (exercised under TSan) ----

TEST(Sweep, ConcurrentLoggingDoesNotRace)
{
    // warn()/inform()/setQuiet() from many threads: TSan flags any
    // unsynchronized access to the logging state.
    setQuiet(true);
    ThreadPool pool(8);
    parallelFor(pool, 64, [](std::size_t i) {
        if (i % 16 == 0)
            setQuiet(true); // benign concurrent store
        warn("concurrent warn %zu", i);
        inform("concurrent inform %zu", i);
    });
    setQuiet(false);
}

TEST(Sweep, ConcurrentWorkloadBuildsDoNotRace)
{
    // Workload generators share only immutable tables; building the
    // same workload on many threads must be race-free and yield
    // identical programs.
    ThreadPool pool(8);
    std::vector<std::shared_ptr<const prog::Program>> built(8);
    parallelFor(pool, built.size(), [&built](std::size_t i) {
        workloads::WorkloadParams p;
        p.scale = 10;
        built[i] = std::make_shared<const prog::Program>(
            workloads::build("go", p));
    });
    for (std::size_t i = 1; i < built.size(); ++i) {
        ASSERT_EQ(built[i]->textSize(), built[0]->textSize());
        for (std::uint32_t w = 0; w < built[0]->textSize(); ++w)
            ASSERT_EQ(built[i]->fetchRaw(w), built[0]->fetchRaw(w));
    }
}
