/**
 * @file
 * Tests for Replicate steering (paper footnote 3): every memory
 * access is inserted into both queues and the wrong copy is killed
 * when the address resolves — eliminating classification hardware at
 * the cost of double queue occupancy.
 */

#include <gtest/gtest.h>

#include "config/cli.hh"
#include "config/presets.hh"
#include "core/mem_queue.hh"
#include "cpu/pipeline.hh"
#include "isa/regs.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"
#include "sim/runner.hh"
#include "stats/group.hh"
#include "util/log.hh"
#include "vm/executor.hh"
#include "workloads/common.hh"

using namespace ddsim;
using namespace ddsim::sim;
namespace reg = ddsim::isa::reg;

namespace {

config::MachineConfig
replicateCfg(int n = 3, int m = 2)
{
    config::MachineConfig cfg = config::decoupled(n, m);
    cfg.classifier = config::ClassifierKind::Replicate;
    return cfg;
}

prog::Program
wl(const char *name)
{
    const workloads::WorkloadInfo *info = workloads::find(name);
    workloads::WorkloadParams p;
    p.scale = info->defaultScale / 4;
    if (p.scale == 0)
        p.scale = 1;
    return workloads::build(name, p);
}

} // namespace

// ---- MemQueue::cancel mechanics ----

TEST(Cancel, CancelledStoreDoesNotBlockDisambiguation)
{
    stats::Group root(nullptr, "");
    mem::MainMemory memory(&root, 50);
    mem::Cache cache(&root, "c",
                     config::CacheParams{2048, 1, 32, 1, 2}, &memory);
    core::QueuePolicy pol;
    pol.ports = 2;
    core::MemQueue q(&root, "q", 8, &cache, nullptr, pol);

    int st = q.allocate(0, 1, false, 4, reg::sp, 0, 1);
    int ld = q.allocate(1, 2, true, 4, reg::sp, 64, 1);
    q.setAddress(ld, layout::StackBase - 64, 1, false);
    std::vector<core::LoadCompletion> done;
    q.tick(1, done);
    EXPECT_TRUE(done.empty()); // blocked by the unknown store address

    q.cancel(st);
    q.tick(2, done);
    ASSERT_EQ(done.size(), 1u); // cancelled store no longer blocks
    EXPECT_EQ(q.cancelledReplicas.value(), 1u);
}

TEST(Cancel, CancelledStoreNeverForwards)
{
    stats::Group root(nullptr, "");
    mem::MainMemory memory(&root, 50);
    mem::Cache cache(&root, "c",
                     config::CacheParams{2048, 1, 32, 1, 2}, &memory);
    core::QueuePolicy pol;
    pol.ports = 2;
    core::MemQueue q(&root, "q", 8, &cache, nullptr, pol);

    int st = q.allocate(0, 1, false, 4, reg::sp, 0, 1);
    q.setAddress(st, layout::StackBase - 64, 1, false);
    q.setStoreData(st, 1);
    q.cancel(st);
    int ld = q.allocate(1, 2, true, 4, reg::sp, 0, 1);
    q.setAddress(ld, layout::StackBase - 64, 1, false);
    std::vector<core::LoadCompletion> done;
    q.tick(2, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(q.loadsForwarded.value(), 0u);
    EXPECT_EQ(q.loadsFromCache.value(), 1u); // went to the cache
}

TEST(Cancel, CommittingCancelledStoreIsFreeAndSilent)
{
    stats::Group root(nullptr, "");
    mem::MainMemory memory(&root, 50);
    mem::Cache cache(&root, "c",
                     config::CacheParams{2048, 1, 32, 1, 1}, &memory);
    core::QueuePolicy pol;
    pol.ports = 1;
    core::MemQueue q(&root, "q", 8, &cache, nullptr, pol);

    int st = q.allocate(0, 1, false, 4, reg::sp, 0, 1);
    q.cancel(st);
    EXPECT_TRUE(q.commitStore(st, 5)); // no port, no cache write
    EXPECT_EQ(cache.writeAccesses.value(), 0u);
    q.release(st);
    EXPECT_EQ(q.occupancy(), 0);
}

TEST(Cancel, DoubleCancelCountsOnce)
{
    stats::Group root(nullptr, "");
    mem::MainMemory memory(&root, 50);
    mem::Cache cache(&root, "c",
                     config::CacheParams{2048, 1, 32, 1, 1}, &memory);
    core::QueuePolicy pol;
    core::MemQueue q(&root, "q", 8, &cache, nullptr, pol);
    int st = q.allocate(0, 1, false, 4, reg::sp, 0, 1);
    q.cancel(st);
    q.cancel(st);
    EXPECT_EQ(q.cancelledReplicas.value(), 1u);
}

// ---- End-to-end Replicate steering ----

TEST(Replicate, RunsEveryWorkloadCorrectly)
{
    for (const char *name : {"li", "compress", "swim"}) {
        auto prog = wl(name);
        SimResult rep = run(prog, replicateCfg());
        SimResult base = run(prog, config::baseline(3));
        EXPECT_EQ(rep.committed, base.committed) << name;
        EXPECT_GT(rep.lvcAccesses, 0u) << name;
    }
}

TEST(Replicate, EveryMemoryAccessIsReplicated)
{
    auto prog = wl("vortex");
    stats::Group root(nullptr, "");
    vm::Executor exec(prog);
    cpu::Pipeline pipe(&root, replicateCfg(), exec);
    pipe.run();
    std::uint64_t memOps = pipe.streamStats().loads.value() +
                           pipe.streamStats().stores.value();
    // Both queues see every access...
    EXPECT_EQ(pipe.lsq().allocated.value(), memOps);
    EXPECT_EQ(pipe.lvaq()->allocated.value(), memOps);
    // ...and between them exactly one copy of each dies.
    std::uint64_t cancelled =
        pipe.lsq().cancelledReplicas.value() +
        pipe.lvaq()->cancelledReplicas.value();
    EXPECT_EQ(cancelled, memOps);
}

TEST(Replicate, MatchesOracleTimingClosely)
{
    // With ample queue capacity the replicated machine should land
    // near the oracle-steered one (it resolves to the same split).
    auto prog = wl("li");
    SimResult oracle = run(prog, config::decoupled(3, 2));
    SimResult rep = run(prog, replicateCfg());
    EXPECT_NEAR(rep.ipc, oracle.ipc, oracle.ipc * 0.10);
}

TEST(Replicate, DoubleOccupancyBitesWithSmallQueues)
{
    // Footnote 3's cost: each access holds two slots, so small queues
    // fill twice as fast as with predictive steering.
    auto prog = wl("vortex");
    config::MachineConfig small = replicateCfg();
    small.lsqSize = 8;
    small.lvaqSize = 8;
    SimResult rep = run(prog, small);

    config::MachineConfig oracleSmall = config::decoupled(3, 2);
    oracleSmall.lsqSize = 8;
    oracleSmall.lvaqSize = 8;
    SimResult oracle = run(prog, oracleSmall);

    EXPECT_LT(rep.ipc, oracle.ipc);
}

TEST(Replicate, WorksWithOptimizations)
{
    auto prog = wl("vortex");
    config::MachineConfig cfg = replicateCfg();
    cfg.fastForward = true;
    cfg.combining = 2;
    SimResult r = run(prog, cfg);
    EXPECT_EQ(r.committed, run(prog, config::baseline(3)).committed);
    EXPECT_GT(r.lvaqFastForwards, 0u);
}

TEST(Replicate, CliAndDescribeKnowIt)
{
    EXPECT_STREQ(config::classifierName(
                     config::ClassifierKind::Replicate),
                 "replicate");
    const char *argv[] = {"prog", "--classifier=replicate",
                          "--lvc=1"};
    config::CliArgs args(3, argv);
    config::MachineConfig cfg = config::decoupled(2, 2);
    config::applyOverrides(cfg, args);
    EXPECT_EQ(cfg.classifier, config::ClassifierKind::Replicate);
}
