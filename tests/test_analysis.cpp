/**
 * @file
 * Static analyzer tests: the abstract value lattice, CFG construction
 * on hand-written programs, sp-tracking joins at merge points, every
 * diagnostic firing on a crafted negative case, and — the load-bearing
 * check — agreement between the static classification and the runtime
 * Oracle classifier's per-instruction verdicts on full workload runs.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/analyzer.hh"
#include "analysis/annotate.hh"
#include "analysis/cfg.hh"
#include "analysis/report.hh"
#include "analysis/value.hh"
#include "prog/asm_parser.hh"
#include "vm/executor.hh"
#include "workloads/common.hh"

using namespace ddsim;
using namespace ddsim::analysis;

namespace {

AbsValue
top()
{
    return AbsValue::top();
}

bool
hasDiag(const AnalysisResult &res, const std::string &id)
{
    for (const Diagnostic &d : res.diagnostics)
        if (d.id == id)
            return true;
    return false;
}

std::string
diagText(const AnalysisResult &res)
{
    return textReport(res);
}

} // namespace

// ---- Abstract value lattice -----------------------------------------------

TEST(AbsValue, JoinRules)
{
    AbsValue c5 = AbsValue::konst(5);
    AbsValue c9 = AbsValue::konst(9);
    AbsValue s0 = AbsValue::stackOff(0);
    AbsValue s8 = AbsValue::stackOff(-8);

    EXPECT_EQ(join(c5, c5), c5);
    EXPECT_EQ(join(AbsValue::bottom(), c5), c5);
    EXPECT_EQ(join(c5, AbsValue::bottom()), c5);
    // Distinct non-stack constants stay provably non-stack.
    EXPECT_EQ(join(c5, c9).kind, ValueKind::NonStack);
    // Distinct stack offsets degrade to "somewhere on the stack".
    EXPECT_EQ(join(s0, s8).kind, ValueKind::StackDerived);
    // Stack vs non-stack is unrecoverable.
    EXPECT_EQ(join(s0, c5).kind, ValueKind::Top);
    EXPECT_EQ(join(AbsValue::nonStack(), c5).kind,
              ValueKind::NonStack);
}

TEST(AbsValue, ArithmeticTransfer)
{
    AbsValue sp = AbsValue::stackOff(0);
    // Exact sp arithmetic stays exact, both directions.
    EXPECT_EQ(absAdd(sp, AbsValue::konst(-32)),
              AbsValue::stackOff(-32));
    EXPECT_EQ(absSub(sp, AbsValue::konst(44)),
              AbsValue::stackOff(-44));
    EXPECT_EQ(absSub(AbsValue::stackOff(-8), sp), AbsValue::konst(-8));
    // sp plus an unknown index is still a stack address.
    EXPECT_EQ(absAdd(sp, top()).kind, ValueKind::StackDerived);
    // Arithmetic rooted at a heap constant stays non-stack.
    AbsValue heap = AbsValue::konst(
        static_cast<std::int64_t>(layout::HeapBase));
    EXPECT_EQ(absAdd(heap, top()).kind, ValueKind::NonStack);
    EXPECT_EQ(absAdd(AbsValue::nonStack(), top()).kind,
              ValueKind::NonStack);
    // A small constant is not a pointer root.
    EXPECT_EQ(absAdd(AbsValue::konst(8), top()).kind, ValueKind::Top);
    // Constant folding wraps at 32 bits.
    EXPECT_EQ(absAdd(AbsValue::konst(0x7fffffff), AbsValue::konst(1)),
              AbsValue::konst(INT32_MIN));
}

TEST(AbsValue, RegStateBasics)
{
    RegState st = RegState::functionEntry();
    EXPECT_TRUE(st.reachable);
    EXPECT_EQ(st.get(isa::reg::sp), AbsValue::stackOff(0));
    EXPECT_EQ(st.get(isa::reg::zero), AbsValue::konst(0));
    // r0 is hard-wired.
    st.set(isa::reg::zero, top());
    EXPECT_EQ(st.get(isa::reg::zero), AbsValue::konst(0));
}

// ---- CFG construction -----------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock)
{
    prog::Program p = prog::assemble(R"(
main:
        addi t0, zero, 1
        addi t1, t0, 2
        halt
)");
    Cfg cfg = buildCfg(p, p.entry());
    ASSERT_EQ(cfg.blocks.size(), 1u);
    EXPECT_EQ(cfg.blocks[0].first, 0u);
    EXPECT_EQ(cfg.blocks[0].last, 2u);
    EXPECT_TRUE(cfg.blocks[0].succs.empty());
}

TEST(Cfg, DiamondHasFourBlocksAndMergedEdges)
{
    prog::Program p = prog::assemble(R"(
main:
        bgtz a0, then
        addi t0, zero, 1
        j merge
then:
        addi t0, zero, 2
merge:
        print t0
        halt
)");
    Cfg cfg = buildCfg(p, p.entry());
    ASSERT_EQ(cfg.blocks.size(), 4u);
    const BasicBlock &entry = cfg.blocks[0];
    ASSERT_EQ(entry.succs.size(), 2u); // fall-through + taken
    int mergeId = cfg.blockContaining(4);
    ASSERT_GE(mergeId, 0);
    EXPECT_EQ(cfg.blocks[static_cast<std::size_t>(mergeId)]
                  .preds.size(),
              2u);
}

TEST(Cfg, LoopHasBackEdge)
{
    prog::Program p = prog::assemble(R"(
main:
        addi t0, zero, 4
loop:
        addi t0, t0, -1
        bgtz t0, loop
        halt
)");
    Cfg cfg = buildCfg(p, p.entry());
    int header = cfg.blockContaining(1);
    int latch = cfg.blockContaining(2);
    ASSERT_GE(header, 0);
    const auto &succs =
        cfg.blocks[static_cast<std::size_t>(latch)].succs;
    EXPECT_NE(std::find(succs.begin(), succs.end(), header),
              succs.end());
}

TEST(Cfg, CallsEndBlocksButEdgeToFallThrough)
{
    prog::Program p = prog::assemble(R"(
main:
        jal helper
        print v0
        halt
helper:
        addi v0, zero, 7
        ret
)");
    Cfg cfg = buildCfg(p, p.entry());
    // jal ends its block; the successor is the fall-through, not the
    // callee.
    int callBlock = cfg.blockContaining(0);
    const auto &succs =
        cfg.blocks[static_cast<std::size_t>(callBlock)].succs;
    ASSERT_EQ(succs.size(), 1u);
    EXPECT_EQ(cfg.blocks[static_cast<std::size_t>(succs[0])].first,
              1u);
    ASSERT_EQ(cfg.callTargets.size(), 1u);
    EXPECT_EQ(cfg.callTargets[0], p.symbol("helper"));

    auto fns = discoverFunctions(p);
    ASSERT_EQ(fns.size(), 2u);
    EXPECT_EQ(fns[0], p.entry());
    EXPECT_EQ(fns[1], p.symbol("helper"));
}

// ---- sp tracking across merge points --------------------------------------

TEST(Analyzer, BalancedDiamondKeepsExactSp)
{
    prog::Program p = prog::assemble(R"(
main:
        addi sp, sp, -16
        bgtz a0, then
        sw zero, 0(sp) !local
        j merge
then:
        sw zero, 4(sp) !local
merge:
        lw t0, 0(sp) !local
        addi sp, sp, 16
        halt
)");
    AnalysisResult res = analyze(p);
    EXPECT_EQ(res.errors(), 0u) << diagText(res);
    EXPECT_EQ(res.warnings(), 0u) << diagText(res);
    ASSERT_EQ(res.functions.size(), 1u);
    EXPECT_TRUE(res.functions[0].frameKnown);
    EXPECT_EQ(res.functions[0].frameWords, 4u);
    // All three accesses provably local.
    EXPECT_EQ(res.loads.local, 1u);
    EXPECT_EQ(res.stores.local, 2u);
    EXPECT_EQ(res.loads.ambiguous + res.stores.ambiguous, 0u);
}

TEST(Analyzer, MergeOfUnequalDepthsIsDiagnosed)
{
    prog::Program p = prog::assemble(R"(
main:
        bgtz a0, deep
        addi sp, sp, -8
        j merge
deep:
        addi sp, sp, -16
merge:
        addi sp, sp, 16
        halt
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "sp-merge-mismatch")) << diagText(res);
    EXPECT_GT(res.errors(), 0u);
}

// ---- diagnostics, one crafted negative case each --------------------------

TEST(Diagnostics, SpLost)
{
    // sp overwritten with a provably non-stack value: genuinely lost.
    prog::Program p = prog::assemble(R"(
main:
        move sp, ra
        halt
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "sp-lost")) << diagText(res);
}

TEST(Diagnostics, SpInexactOnDynamicAdjustment)
{
    // sp moved by an unknown amount stays stack-rooted: that is the
    // alloca idiom, a warning (sp-inexact), not a lost sp.
    prog::Program p = prog::assemble(R"(
main:
        add sp, sp, a0
        halt
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "sp-inexact")) << diagText(res);
    EXPECT_FALSE(hasDiag(res, "sp-lost")) << diagText(res);
    EXPECT_EQ(res.errors(), 0u) << diagText(res);
}

TEST(Diagnostics, UnbalancedReturn)
{
    prog::Program p = prog::assemble(R"(
main:
        jal leaf
        halt
leaf:
        addi sp, sp, -8
        ret
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "sp-unbalanced-return"))
        << diagText(res);
}

TEST(Diagnostics, AccessBelowFrame)
{
    prog::Program p = prog::assemble(R"(
main:
        addi sp, sp, -8
        sw zero, -4(sp) !local
        addi sp, sp, 8
        halt
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "access-below-frame")) << diagText(res);
}

TEST(Diagnostics, AccessAboveEntry)
{
    prog::Program p = prog::assemble(R"(
main:
        jal leaf
        halt
leaf:
        lw t0, 4(sp)
        ret
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "access-above-entry")) << diagText(res);
}

TEST(Diagnostics, AnnotatedLocalButProvablyNonLocal)
{
    prog::Program p = prog::assemble(R"(
main:
        sw zero, 0(gp) !local
        halt
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "annotation-local-but-nonlocal"))
        << diagText(res);
    EXPECT_GT(res.errors(), 0u);
}

TEST(Diagnostics, ProvablyLocalButNotAnnotated)
{
    prog::Program p = prog::assemble(R"(
main:
        addi sp, sp, -8
        sw zero, 0(sp)
        addi sp, sp, 8
        halt
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "annotation-missing-local"))
        << diagText(res);
    EXPECT_EQ(res.errors(), 0u); // a warning, not an error
}

TEST(Diagnostics, UnresolvedIndirectJump)
{
    prog::Program p = prog::assemble(R"(
main:
        addi t0, zero, 0
        jr t0
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "unresolved-indirect-jump"))
        << diagText(res);
}

TEST(Diagnostics, ControlFlowOutOfText)
{
    prog::Program p = prog::assemble(R"(
main:
        j 999
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "control-flow-out-of-text"))
        << diagText(res);
}

TEST(Diagnostics, FrameExceedsOffsetField)
{
    // A 20000-byte frame cannot be spanned by the 15-bit offset
    // field; the paper's footnote 6 prescribes a secondary base.
    prog::Program p = prog::assemble(R"(
main:
        addi t0, zero, 20000
        sub sp, sp, t0
        add sp, sp, t0
        halt
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "frame-exceeds-offset-field"))
        << diagText(res);
    ASSERT_EQ(res.functions.size(), 1u);
    EXPECT_EQ(res.functions[0].frameWords, 5000u);
}

// ---- interprocedural refinement -------------------------------------------

TEST(Analyzer, ArgumentAndReturnPropagation)
{
    // The heap pointer flows a0 -> callee and back through v0; both
    // dereferences should be provably non-local.
    prog::Program p = prog::assemble(R"(
        .data
cell:   .word 42
        .text
main:
        la a0, cell
        jal bump
        lw t0, 0(v0)
        print t0
        halt
bump:
        lw t1, 0(a0)
        addi t1, t1, 1
        sw t1, 0(a0)
        move v0, a0
        ret
)");
    AnalysisResult res = analyze(p);
    EXPECT_EQ(res.errors(), 0u) << diagText(res);
    EXPECT_EQ(res.loads.ambiguous + res.stores.ambiguous, 0u)
        << diagText(res);
    EXPECT_EQ(res.loads.nonLocal, 2u);
    EXPECT_EQ(res.stores.nonLocal, 1u);
}

TEST(Analyzer, SpillReloadKeepsTracking)
{
    // A heap pointer spilled to the frame and reloaded after a call
    // must still classify its dereference as non-local.
    prog::Program p = prog::assemble(R"(
        .data
cell:   .word 7
        .text
main:
        addi sp, sp, -8
        sw ra, 4(sp) !local
        la t0, cell
        sw t0, 0(sp) !local
        jal leaf
        lw t1, 0(sp) !local
        lw t2, 0(t1)
        lw ra, 4(sp) !local
        addi sp, sp, 8
        print t2
        halt
leaf:
        ret
)");
    AnalysisResult res = analyze(p);
    EXPECT_EQ(res.errors(), 0u) << diagText(res);
    EXPECT_EQ(res.loads.ambiguous + res.stores.ambiguous, 0u)
        << diagText(res);
}

// ---- adversarial frames ---------------------------------------------------

TEST(Adversarial, AllocaFrameWithSpRestoreThroughCopy)
{
    // The alloca idiom: a dynamic sp adjustment (sp-inexact warning,
    // not an error), stores through the inexact-but-stack-rooted sp
    // still provably local, and the restore through a saved copy
    // recovering the exact entry-relative offset for the epilogue.
    prog::Program p = prog::assemble(R"(
main:
        addi sp, sp, -16
        sw ra, 12(sp) !local
        move t0, sp
        sub sp, sp, a0
        sw zero, 0(sp) !local
        move sp, t0
        lw ra, 12(sp) !local
        addi sp, sp, 16
        halt
)");
    AnalysisResult res = analyze(p);
    EXPECT_TRUE(hasDiag(res, "sp-inexact")) << diagText(res);
    EXPECT_FALSE(hasDiag(res, "sp-lost")) << diagText(res);
    EXPECT_FALSE(hasDiag(res, "sp-unbalanced-return"))
        << diagText(res);
    EXPECT_EQ(res.errors(), 0u) << diagText(res);
    // Pinned verdicts: every access is provably local — including the
    // store through the dynamically adjusted sp (rooted-pointer
    // assumption) — and none is ambiguous.
    EXPECT_EQ(res.loads.local, 1u) << diagText(res);
    EXPECT_EQ(res.stores.local, 2u) << diagText(res);
    EXPECT_EQ(res.loads.ambiguous + res.stores.ambiguous, 0u)
        << diagText(res);
}

TEST(Adversarial, MutualRecursionConverges)
{
    // even <-> odd call each other; the interprocedural fixpoint must
    // converge with every frame access still provably local.
    prog::Program p = prog::assemble(R"(
main:
        jal even
        halt
even:
        addi sp, sp, -8
        sw ra, 0(sp) !local
        jal odd
        lw ra, 0(sp) !local
        addi sp, sp, 8
        ret
odd:
        addi sp, sp, -8
        sw ra, 0(sp) !local
        jal even
        lw ra, 0(sp) !local
        addi sp, sp, 8
        ret
)");
    AnalysisResult res = analyze(p);
    EXPECT_EQ(res.errors(), 0u) << diagText(res);
    // Pinned verdicts: two spills, two reloads, all local.
    EXPECT_EQ(res.loads.local, 2u) << diagText(res);
    EXPECT_EQ(res.stores.local, 2u) << diagText(res);
    EXPECT_EQ(res.loads.ambiguous + res.stores.ambiguous, 0u)
        << diagText(res);
}

TEST(Adversarial, StackPointerEscapesToCallee)
{
    // A frame address passed as an argument arrives as StackDerived
    // (the per-function StackOff coordinate cannot cross the call),
    // but the dereference is still provably on the stack — Local, not
    // Ambiguous.
    prog::Program p = prog::assemble(R"(
main:
        addi sp, sp, -16
        sw zero, 0(sp) !local
        move a0, sp
        jal consume
        addi sp, sp, 16
        halt
consume:
        lw t0, 0(a0) !local
        ret
)");
    AnalysisResult res = analyze(p);
    EXPECT_EQ(res.errors(), 0u) << diagText(res);
    EXPECT_EQ(res.loads.local, 1u) << diagText(res);
    EXPECT_EQ(res.stores.local, 1u) << diagText(res);
    EXPECT_EQ(res.loads.ambiguous + res.stores.ambiguous, 0u)
        << diagText(res);
}

// ---- the annotation pass --------------------------------------------------

namespace {

/**
 * One provably-Local store (hint clear), one provably-NonLocal store
 * (hint wrongly set), one Ambiguous load (hint as given): every
 * verdict class the policies treat differently.
 */
prog::Program
annotateFixture(bool ambiguousHinted)
{
    std::string src = R"(
main:
        addi sp, sp, -8
        sw zero, 0(sp)
        sw zero, 0(gp) !local
        lw t0, 0(t6))";
    src += ambiguousHinted ? " !local\n" : "\n";
    src += R"(        addi sp, sp, 8
        halt
)";
    return prog::assemble(src);
}

} // namespace

TEST(Annotate, SafeClearsAmbiguous)
{
    prog::Program p = annotateFixture(true);
    AnnotateStats st;
    prog::Program out =
        annotateProgram(p, HintPolicy::Safe, &st);
    EXPECT_EQ(st.memInsts, 3u);
    EXPECT_EQ(st.ambiguous, 1u);
    EXPECT_EQ(st.hinted, 1u);  // the Local store
    EXPECT_EQ(st.cleared, 2u); // NonLocal + Ambiguous
    EXPECT_EQ(st.changed, 3u); // all three bits flipped
    EXPECT_TRUE(out.fetch(1).localHint);   // sw 0(sp): Local
    EXPECT_FALSE(out.fetch(2).localHint);  // sw 0(gp): NonLocal
    EXPECT_FALSE(out.fetch(3).localHint);  // lw 0(t6): Ambiguous
}

TEST(Annotate, SpeculativeHintsAmbiguous)
{
    prog::Program p = annotateFixture(false);
    AnnotateStats st;
    prog::Program out =
        annotateProgram(p, HintPolicy::Speculative, &st);
    EXPECT_EQ(st.hinted, 2u); // Local + Ambiguous
    EXPECT_EQ(st.cleared, 1u);
    EXPECT_TRUE(out.fetch(3).localHint);
}

TEST(Annotate, HybridKeepsAmbiguousHint)
{
    // The ambiguous instruction keeps whatever bit the program
    // carried — in both polarities.
    AnnotateStats st;
    prog::Program kept =
        annotateProgram(annotateFixture(true), HintPolicy::Hybrid,
                        &st);
    EXPECT_TRUE(kept.fetch(3).localHint);
    EXPECT_EQ(st.ambiguous, 1u);
    prog::Program cleared = annotateProgram(annotateFixture(false),
                                            HintPolicy::Hybrid);
    EXPECT_FALSE(cleared.fetch(3).localHint);
}

TEST(Annotate, IsIdempotentAndPreservesVerdicts)
{
    for (HintPolicy policy :
         {HintPolicy::Safe, HintPolicy::Speculative,
          HintPolicy::Hybrid}) {
        prog::Program once =
            annotateProgram(annotateFixture(true), policy);
        AnnotateStats st;
        prog::Program twice = annotateProgram(once, policy, &st);
        EXPECT_EQ(st.changed, 0u) << hintPolicyName(policy);
        ASSERT_EQ(once.textSize(), twice.textSize());
        for (std::uint32_t i = 0; i < once.textSize(); ++i)
            EXPECT_EQ(once.fetchRaw(i), twice.fetchRaw(i))
                << hintPolicyName(policy);
        // Hint bits never feed the verdicts, so re-analysis of the
        // annotated program must agree with the original's.
        AnalysisResult before = analyze(annotateFixture(true));
        AnalysisResult after = analyze(once);
        EXPECT_EQ(before.loads.local, after.loads.local);
        EXPECT_EQ(before.stores.nonLocal, after.stores.nonLocal);
        EXPECT_EQ(before.loads.ambiguous, after.loads.ambiguous);
    }
}

// ---- report rendering -----------------------------------------------------

TEST(Report, JsonContainsSummaryAndDiagnostics)
{
    prog::Program p = prog::assemble(R"(
main:
        sw zero, 0(gp) !local
        halt
)");
    AnalysisResult res = analyze(p);
    std::string json = jsonReport(res);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"annotation-local-but-nonlocal\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"stores\": {\"local\": 0, \"nonlocal\": 1, "
                        "\"ambiguous\": 0}"),
              std::string::npos)
        << json;
}

// ---- static vs. runtime-Oracle cross-check --------------------------------

namespace {

struct CrossCheck
{
    std::uint64_t checked = 0;     ///< Dynamic mem insts with a
                                   ///< definite static verdict.
    std::uint64_t mismatches = 0;  ///< Static verdict contradicted.
    std::size_t staticAmbiguous = 0;
};

/**
 * Run @p name to completion and compare the Oracle's per-access
 * stack/non-stack decision against the static verdict of the same
 * instruction. Local must always hit the stack, NonLocal never;
 * Ambiguous is exempt but counted against a pinned budget.
 */
CrossCheck
crossCheck(const std::string &name, std::uint64_t scale = 10)
{
    workloads::WorkloadParams params;
    params.scale = scale;
    prog::Program program = workloads::build(name, params);
    AnalysisResult res = analyze(program);
    EXPECT_EQ(res.errors(), 0u) << name << "\n" << diagText(res);
    EXPECT_EQ(res.warnings(), 0u) << name << "\n" << diagText(res);

    CrossCheck out;
    out.staticAmbiguous = res.loads.ambiguous + res.stores.ambiguous;

    vm::Executor exec(program);
    std::uint64_t guard = 50'000'000;
    while (!exec.halted() && guard--) {
        vm::DynInst di = exec.step();
        if (!di.isMem())
            continue;
        auto it = res.verdicts.find(di.pcIdx);
        if (it == res.verdicts.end()) {
            ADD_FAILURE()
                << name << ": executed mem inst @" << di.pcIdx
                << " missing from the static classification";
            break;
        }
        if (it->second == Verdict::Ambiguous)
            continue;
        ++out.checked;
        bool staticLocal = it->second == Verdict::Local;
        if (staticLocal != di.stackAccess) {
            ++out.mismatches;
            ADD_FAILURE() << name << " @" << di.pcIdx << ": static "
                          << verdictName(it->second)
                          << " but oracle says stackAccess="
                          << di.stackAccess;
        }
        if (out.mismatches > 3)
            break; // don't spam; the workload run is long
    }
    EXPECT_TRUE(exec.halted()) << name;
    return out;
}

} // namespace

TEST(CrossCheck, IntegerWorkloadsAgreeWithOracle)
{
    for (const char *name : {"go", "m88ksim", "gcc", "compress",
                             "li", "ijpeg", "perl", "vortex"}) {
        CrossCheck cc = crossCheck(name);
        EXPECT_EQ(cc.mismatches, 0u) << name;
        EXPECT_GT(cc.checked, 0u) << name;
        // Zero ambiguity across the whole suite: m88ksim's
        // hand-rolled 44 KB loadcore frame (secondary base register,
        // paper footnote 6) used to defeat the classifier until
        // stack-derived bases were accepted as Local under the
        // rooted-pointer assumption.
        EXPECT_EQ(cc.staticAmbiguous, 0u) << name;
    }
}

TEST(CrossCheck, FpWorkloadsAgreeWithOracle)
{
    for (const char *name : {"tomcatv", "swim", "su2cor", "mgrid"}) {
        CrossCheck cc = crossCheck(name);
        EXPECT_EQ(cc.mismatches, 0u) << name;
        EXPECT_GT(cc.checked, 0u) << name;
        EXPECT_EQ(cc.staticAmbiguous, 0u) << name;
    }
}

TEST(CrossCheck, WholeRegistryAnalyzesClean)
{
    for (const auto &info : workloads::all()) {
        workloads::WorkloadParams params;
        params.scale = info.defaultScale;
        AnalysisResult res = analyze(info.factory(params));
        EXPECT_EQ(res.errors(), 0u)
            << info.name << "\n" << diagText(res);
        EXPECT_EQ(res.warnings(), 0u)
            << info.name << "\n" << diagText(res);
        EXPECT_GT(res.loads.total() + res.stores.total(), 0u)
            << info.name;
    }
}
