/**
 * @file
 * Tests pinning the paper's finer-grained findings (Sections 4.2-4.4)
 * beyond the basics in test_decoupling: latency-sensitivity shapes,
 * the LVC-latency insensitivity, the queue-splitting forwarding
 * anomaly, and misprediction recovery.
 */

#include <gtest/gtest.h>

#include "config/presets.hh"
#include "prog/builder.hh"
#include "sim/runner.hh"
#include "stats/group.hh"
#include "vm/executor.hh"
#include "vm/trace.hh"
#include "workloads/common.hh"

using namespace ddsim;
using namespace ddsim::sim;

namespace {

prog::Program
wl(const char *name, std::uint64_t scaleFactor = 1)
{
    const workloads::WorkloadInfo *info = workloads::find(name);
    workloads::WorkloadParams p;
    p.scale = info->defaultScale * scaleFactor / 4;
    if (p.scale == 0)
        p.scale = 1;
    return workloads::build(name, p);
}

} // namespace

TEST(PaperEffects, SlowFourPortCacheLosesItsAdvantage)
{
    // Fig. 10: adding one cycle to the L1 hit time costs real
    // performance -- in some programs enough to fall below (2+0).
    for (const char *name : {"go", "li", "vortex"}) {
        auto prog = wl(name, 2);
        SimResult fast = run(prog, config::baseline(4));
        config::MachineConfig cfg = config::baseline(4);
        cfg.l1.hitLatency = 3;
        SimResult slow = run(prog, cfg);
        EXPECT_LT(slow.ipc, fast.ipc) << name;
        // The paper saw up to 13.4% loss; require at least a
        // measurable one on these load-latency-sensitive programs.
        EXPECT_LT(slow.ipc, fast.ipc * 0.995) << name;
    }
}

TEST(PaperEffects, DecoupledTwoTwoBeatsSlowFourZeroForInteger)
{
    // Fig. 10: (2+2) with a 2-cycle L1 consistently beats the
    // 3-cycle (4+0) for the integer programs.
    std::vector<double> wins;
    for (const char *name : {"li", "vortex", "perl", "gcc"}) {
        auto prog = wl(name, 2);
        SimResult dec = run(prog, config::decoupledOptimized(2, 2));
        config::MachineConfig slow = config::baseline(4);
        slow.l1.hitLatency = 3;
        SimResult s40 = run(prog, slow);
        wins.push_back(dec.ipc / s40.ipc);
    }
    double product = 1.0;
    for (double w : wins)
        product *= w;
    EXPECT_GT(product, 1.0) << "(2+2) should beat 3-cycle (4+0) on "
                               "average for integer programs";
}

TEST(PaperEffects, FpProgramsGainLittleFromDecoupling)
{
    // Fig. 10 / Section 4.3: FP codes' local accesses are not
    // interleaved well with the non-local stream, so (2+2) behaves
    // much closer to (2+0) than it does for local-heavy integer
    // codes.
    auto fpProg = wl("swim", 2);
    SimResult fpBase = run(fpProg, config::baseline(2));
    SimResult fpDec = run(fpProg, config::decoupledOptimized(2, 2));
    double fpGain = fpDec.ipc / fpBase.ipc;

    auto intProg = wl("vortex", 2);
    SimResult intBase = run(intProg, config::baseline(2));
    SimResult intDec = run(intProg, config::decoupledOptimized(2, 2));
    double intGain = intDec.ipc / intBase.ipc;

    EXPECT_GT(intGain, fpGain);
    EXPECT_LT(fpGain, 1.15) << "swim-like should be nearly flat";
}

TEST(PaperEffects, LvcLatencyAlmostIrrelevant)
{
    // Section 4.3: raising the LVC hit time from 1 to 2 cycles moves
    // performance far less than the same change on the L1 would,
    // because 50-90% of LVC loads are satisfied in the LVAQ and the
    // scheduler hides much of the rest. A few percent is tolerated.
    for (const char *name : {"vortex", "perl"}) {
        auto prog = wl(name, 2);
        SimResult fast = run(prog, config::decoupledOptimized(3, 2));
        config::MachineConfig cfg = config::decoupledOptimized(3, 2);
        cfg.lvc.hitLatency = 2;
        SimResult slow = run(prog, cfg);
        EXPECT_GT(slow.ipc, fast.ipc * 0.94) << name;
    }
}

TEST(PaperEffects, QueueSplittingReducesLsqForwarding)
{
    // Section 4.3 (the su2cor anomaly): decoupling splits the
    // store/load pairs across two shorter queues -- the LSQ loses a
    // large share of its forwarding pairs to the LVAQ, and the total
    // does not multiply (at most it redistributes).
    auto prog = wl("su2cor", 2);
    SimResult base = run(prog, config::baseline(2));
    SimResult dec = run(prog, config::decoupled(2, 2));
    EXPECT_LT(dec.lsqForwards, base.lsqForwards)
        << "the LSQ must lose forwarding pairs to the LVAQ";
    std::uint64_t decTotal = dec.lsqForwards + dec.lvaqForwards;
    EXPECT_LE(decTotal, base.lsqForwards + base.lsqForwards / 10)
        << "total in-queue forwards should redistribute, not grow";
}

TEST(PaperEffects, AnnotationMatchesOracleOnOurWorkloads)
{
    // Our generators mark local accesses exactly, so the annotation
    // classifier must agree with the oracle end to end -- the
    // compiler-only configuration of Section 2.2.3.
    for (const char *name : {"li", "swim"}) {
        auto prog = wl(name);
        config::MachineConfig ann = config::decoupled(3, 2);
        ann.classifier = config::ClassifierKind::Annotation;
        SimResult a = run(prog, ann);
        SimResult o = run(prog, config::decoupled(3, 2));
        EXPECT_EQ(a.missteered, 0u) << name;
        EXPECT_EQ(a.cycles, o.cycles)
            << name << ": annotation and oracle should schedule "
                       "identically here";
    }
}

TEST(PaperEffects, MispredictionRecoveryCostsCycles)
{
    // Force missteers: classify with a predictor on a program whose
    // first-touch hints are wrong for some instructions, and check
    // the recovery path is exercised and costs time relative to
    // oracle classification.
    using namespace ddsim::prog;
    namespace reg = ddsim::isa::reg;

    // A loop whose hot load is marked "local" by the (lying)
    // compiler but actually touches the heap.
    ProgramBuilder b("liar");
    Addr buf = b.dataWords(64);
    b.la(reg::t0, buf);
    b.li(reg::t1, 400);
    Label loop = b.here();
    b.lw(reg::t2, 0, reg::t0, /*local=*/true); // wrong hint
    b.sw(reg::t2, 4, reg::t0, /*local=*/true); // wrong hint
    b.addi(reg::t1, reg::t1, -1);
    b.bgtz(reg::t1, loop);
    b.halt();
    Program p = b.finish();

    config::MachineConfig ann = config::decoupled(2, 2);
    ann.classifier = config::ClassifierKind::Annotation;
    SimResult lied = run(p, ann);
    EXPECT_GT(lied.missteered, 0u);
    EXPECT_LT(lied.classifierAccuracy, 1.0);

    SimResult oracle = run(p, config::decoupled(2, 2));
    EXPECT_EQ(oracle.missteered, 0u);
    EXPECT_LE(oracle.cycles, lied.cycles)
        << "missteered accesses must not be free";

    // The predictor, by contrast, learns after the first touch.
    config::MachineConfig pred = config::decoupled(2, 2);
    pred.classifier = config::ClassifierKind::Predictor;
    SimResult learned = run(p, pred);
    EXPECT_LT(learned.missteered, lied.missteered);
    // Several in-flight copies of the hot instructions mispredict
    // before the first resolution trains the table, so accuracy is
    // high but not perfect.
    EXPECT_GT(learned.classifierAccuracy, 0.95);
}

TEST(PaperEffects, CombiningHelpsMostWhenPortsAreScarce)
{
    // Fig. 8: the 2-way combining gain under (3+1) exceeds the gain
    // under (3+2) -- combining is a bandwidth amplifier.
    auto prog = wl("vortex", 2);
    auto gain = [&](int ports) {
        SimResult off = run(prog, config::decoupled(3, ports));
        config::MachineConfig cfg = config::decoupled(3, ports);
        cfg.combining = 2;
        SimResult on = run(prog, cfg);
        return on.ipc / off.ipc;
    };
    double g1 = gain(1);
    double g2 = gain(2);
    EXPECT_GT(g1, 1.02);
    EXPECT_GT(g1, g2);
}

TEST(PaperEffects, LvcMissRateShapeMatchesFig6)
{
    // Fig. 6's shape: miss rate falls with LVC size; gcc is the worst
    // program at every size; compress is flat and tiny.
    auto missAt = [&](const char *name, std::uint32_t bytes) {
        auto prog = wl(name, 2);
        config::MachineConfig cfg = config::decoupled(3, 4);
        cfg.lvc.sizeBytes = bytes;
        return run(prog, cfg).lvcMissRate;
    };
    double gccHalf = missAt("gcc", 512);
    double gccOne = missAt("gcc", 1024);
    double gccTwo = missAt("gcc", 2048);
    EXPECT_GT(gccHalf, gccOne);
    EXPECT_GT(gccOne, gccTwo);
    EXPECT_GT(gccTwo, missAt("vortex", 2048));
    EXPECT_GT(gccTwo, missAt("compress", 2048));
    // 2 KB still hits >99% short of gcc's worst case ("over 99% for
    // all the programs except 126.gcc").
    EXPECT_LT(missAt("vortex", 2048), 0.01);
    EXPECT_LT(missAt("li", 2048), 0.01);
}

TEST(PaperEffects, PortSweepShapeMatchesFig5)
{
    // Fig. 5's shape on a port-hungry program: monotone improvement
    // that saturates by 4-5 ports.
    auto prog = wl("vortex", 2);
    SimResult p1 = run(prog, config::baseline(1));
    SimResult p2 = run(prog, config::baseline(2));
    SimResult p3 = run(prog, config::baseline(3));
    SimResult p16 = run(prog, config::baseline(16));
    EXPECT_LT(p1.ipc, p2.ipc);
    EXPECT_LT(p2.ipc, p3.ipc);
    EXPECT_LT(p1.ipc / p16.ipc, 0.85); // 1 port is clearly starved
    EXPECT_GT(p3.ipc / p16.ipc, 0.85); // 3 ports are nearly enough
}

TEST(PaperEffects, StaticFramesAreSmallLikeThePaper)
{
    // Section 2.2.1: static frames average ~7 words; ours land in
    // the same regime (2-25 words per program).
    for (const char *name : {"li", "vortex", "perl", "go"}) {
        auto prog = wl(name);
        stats::Group root(nullptr, "");
        vm::Executor exec(prog);
        vm::StreamStats ss(&root);
        while (!exec.halted())
            ss.record(exec.step());
        double m = ss.meanStaticFrameWords();
        EXPECT_GE(m, 2.0) << name;
        EXPECT_LE(m, 25.0) << name;
    }
}
