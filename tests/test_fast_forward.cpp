/**
 * @file
 * Fast-data-forwarding match tests: the offset-matching rules of
 * Section 2.2.2 — exact match, epoch boundaries, conservative stops,
 * and disjointness reasoning.
 */

#include <gtest/gtest.h>

#include "core/fast_forward.hh"
#include "isa/regs.hh"

using namespace ddsim;
using namespace ddsim::core;
namespace reg = ddsim::isa::reg;

namespace {

QueueEntry
entry(bool isStore, RegId base, std::int32_t offset,
      std::uint32_t version, std::uint8_t size = 4)
{
    QueueEntry e;
    e.valid = true;
    e.isStore = isStore;
    e.isLoad = !isStore;
    e.baseReg = base;
    e.offset = offset;
    e.baseVersion = version;
    e.size = size;
    return e;
}

/** Helper: entries[0] is youngest-older, increasing age. */
int
match(const std::vector<QueueEntry> &olderYoungestFirst,
      const QueueEntry &load)
{
    std::vector<QueueEntry> storage = olderYoungestFirst;
    std::vector<int> order;
    for (int i = 0; i < static_cast<int>(storage.size()); ++i)
        order.push_back(i);
    return findFastForwardStore(storage, order, load);
}

} // namespace

TEST(FastForward, ExactMatchFound)
{
    auto load = entry(false, reg::sp, 8, 1);
    int m = match({entry(true, reg::sp, 8, 1)}, load);
    EXPECT_EQ(m, 0);
}

TEST(FastForward, DifferentOffsetSkipsToOlderMatch)
{
    auto load = entry(false, reg::sp, 8, 1);
    int m = match({entry(true, reg::sp, 16, 1),  // disjoint, skip
                   entry(true, reg::sp, 8, 1)},  // match
                  load);
    EXPECT_EQ(m, 1);
}

TEST(FastForward, YoungestMatchWins)
{
    auto load = entry(false, reg::sp, 8, 1);
    int m = match({entry(true, reg::sp, 8, 1),
                   entry(true, reg::sp, 8, 1)},
                  load);
    EXPECT_EQ(m, 0);
}

TEST(FastForward, DifferentVersionStopsScan)
{
    // A store from a different sp epoch could alias anything; even an
    // apparently-matching older store must not be used.
    auto load = entry(false, reg::sp, 8, 2);
    int m = match({entry(true, reg::sp, 8, 1),   // other epoch: stop
                   entry(true, reg::sp, 8, 2)},  // unreachable
                  load);
    EXPECT_EQ(m, -1);
}

TEST(FastForward, DifferentBaseStopsScan)
{
    auto load = entry(false, reg::sp, 8, 1);
    int m = match({entry(true, reg::t0, 8, 1),
                   entry(true, reg::sp, 8, 1)},
                  load);
    EXPECT_EQ(m, -1);
}

TEST(FastForward, PartialOverlapBlocks)
{
    // sb to a byte inside the loaded word: same epoch, overlapping
    // but not an exact match.
    auto load = entry(false, reg::sp, 8, 1, 4);
    int m = match({entry(true, reg::sp, 9, 1, 1)}, load);
    EXPECT_EQ(m, -1);
}

TEST(FastForward, SizeMismatchAtSameOffsetBlocks)
{
    auto load = entry(false, reg::sp, 8, 1, 4);
    int m = match({entry(true, reg::sp, 8, 1, 8)}, load);
    EXPECT_EQ(m, -1);
}

TEST(FastForward, InterveningLoadsIgnored)
{
    auto load = entry(false, reg::sp, 8, 1);
    int m = match({entry(false, reg::sp, 8, 1),   // older load: skip
                   entry(false, reg::t3, 0, 9),   // unrelated load
                   entry(true, reg::sp, 8, 1)},   // match
                  load);
    EXPECT_EQ(m, 2);
}

TEST(FastForward, AdjacentDisjointWordsSkipped)
{
    // Store to [4,8), load from [8,12): provably disjoint.
    auto load = entry(false, reg::sp, 8, 1, 4);
    int m = match({entry(true, reg::sp, 4, 1, 4),
                   entry(true, reg::sp, 8, 1, 4)},
                  load);
    EXPECT_EQ(m, 1);
}

TEST(FastForward, DoubleWordExactMatch)
{
    auto load = entry(false, reg::sp, 16, 3, 8);
    int m = match({entry(true, reg::sp, 16, 3, 8)}, load);
    EXPECT_EQ(m, 0);
}

TEST(FastForward, EmptyQueueNoMatch)
{
    auto load = entry(false, reg::sp, 8, 1);
    EXPECT_EQ(match({}, load), -1);
}

TEST(FastForward, InvalidEntriesSkipped)
{
    auto load = entry(false, reg::sp, 8, 1);
    auto dead = entry(true, reg::sp, 8, 1);
    dead.valid = false;
    int m = match({dead, entry(true, reg::sp, 8, 1)}, load);
    EXPECT_EQ(m, 1);
}
