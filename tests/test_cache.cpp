/**
 * @file
 * Cache model tests: hit/miss behaviour, LRU replacement, write-back
 * traffic, fill timing, MSHR merging, and parameterized geometry
 * invariants.
 */

#include <gtest/gtest.h>

#include "config/machine_config.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"
#include "stats/group.hh"
#include "util/log.hh"
#include "util/rng.hh"

using namespace ddsim;
using namespace ddsim::mem;
using ddsim::config::CacheParams;

namespace {

struct Rig
{
    stats::Group root{nullptr, ""};
    MainMemory memory{&root, 50};
    Cache cache;

    explicit Rig(CacheParams p, int mshrs = 32)
        : cache(&root, "c", p, &memory, mshrs)
    {}
};

// 4 sets x 2 ways x 32 B lines = 256 B, 1-cycle hit.
CacheParams
smallParams()
{
    return CacheParams{256, 2, 32, 1, 1};
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Rig r(smallParams());
    Cycle t1 = r.cache.access(0x1000, false, 0);
    EXPECT_EQ(r.cache.misses.value(), 1u);
    EXPECT_EQ(t1, 0u + 1u + 50u); // lookup + memory
    Cycle t2 = r.cache.access(0x1000, false, t1);
    EXPECT_EQ(r.cache.hits.value(), 1u);
    EXPECT_EQ(t2, t1 + 1);
}

TEST(Cache, SameLineDifferentWordsHit)
{
    Rig r(smallParams());
    r.cache.access(0x1000, false, 0);
    r.cache.access(0x101c, false, 100);
    EXPECT_EQ(r.cache.misses.value(), 1u);
    EXPECT_EQ(r.cache.hits.value(), 1u);
    // Next line misses.
    r.cache.access(0x1020, false, 200);
    EXPECT_EQ(r.cache.misses.value(), 2u);
}

TEST(Cache, LruReplacementWithinSet)
{
    Rig r(smallParams());
    // Set index = (addr>>5) & 3. These three map to set 0.
    Addr a = 0x0000, b = 0x0080, c = 0x0100;
    r.cache.access(a, false, 10);
    r.cache.access(b, false, 20);
    EXPECT_TRUE(r.cache.probe(a));
    EXPECT_TRUE(r.cache.probe(b));
    // Touch a so b becomes LRU, then bring in c.
    r.cache.access(a, false, 30);
    r.cache.access(c, false, 40);
    EXPECT_TRUE(r.cache.probe(a));
    EXPECT_FALSE(r.cache.probe(b)); // evicted
    EXPECT_TRUE(r.cache.probe(c));
    EXPECT_EQ(r.cache.evictions.value(), 1u);
}

TEST(Cache, DirtyEvictionWritesBack)
{
    Rig r(smallParams());
    r.cache.access(0x0000, true, 0);   // dirty line in set 0
    r.cache.access(0x0080, false, 60);
    r.cache.access(0x0100, false, 120); // evicts dirty 0x0000
    EXPECT_EQ(r.cache.writebacks.value(), 1u);
    // The writeback reached the next level as a write.
    EXPECT_EQ(r.memory.writes.value(), 1u);
}

TEST(Cache, CleanEvictionDoesNotWriteBack)
{
    Rig r(smallParams());
    r.cache.access(0x0000, false, 0);
    r.cache.access(0x0080, false, 60);
    r.cache.access(0x0100, false, 120);
    EXPECT_EQ(r.cache.evictions.value(), 1u);
    EXPECT_EQ(r.cache.writebacks.value(), 0u);
}

TEST(Cache, WriteAllocates)
{
    Rig r(smallParams());
    r.cache.access(0x2000, true, 0);
    EXPECT_TRUE(r.cache.probe(0x2000));
    EXPECT_EQ(r.cache.writeAccesses.value(), 1u);
}

TEST(Cache, SecondAccessDuringFillSharesIt)
{
    Rig r(smallParams());
    Cycle fill = r.cache.access(0x3000, false, 0); // miss at 0
    // Second access to the same line before the fill completes: the
    // line is already installed (tracked by the MSHR), so this is a
    // hit that waits for the in-flight fill -- and crucially it does
    // not launch a second memory request.
    Cycle t2 = r.cache.access(0x3004, false, 2);
    EXPECT_EQ(t2, fill); // waits for the same fill, no new memory trip
    EXPECT_EQ(r.memory.accesses.value(), 1u);
    EXPECT_EQ(r.cache.hits.value(), 1u);
}

TEST(Cache, MshrMergeAfterConflictingEviction)
{
    // Direct-mapped 2-set cache: a line whose fill is in flight can be
    // evicted by a conflicting miss; a re-access then merges into the
    // still-outstanding MSHR instead of re-fetching.
    Rig r(CacheParams{64, 1, 32, 1, 1});
    Cycle fillA = r.cache.access(0x000, false, 0);  // set 0, fill @ 51
    r.cache.access(0x040, false, 1);                // set 0: evicts A
    Cycle t = r.cache.access(0x000, false, 2);      // A's fill pending
    EXPECT_EQ(r.cache.mshrMerges.value(), 1u);
    EXPECT_GE(t, fillA);
    EXPECT_EQ(r.memory.reads.value(), 2u); // A fetched only once
}

TEST(Cache, HitUnderFillWaitsForData)
{
    Rig r(smallParams());
    Cycle fill = r.cache.access(0x3000, false, 0);
    // The line was installed at miss time; a "hit" before fill
    // completion must still wait for the data.
    Cycle t2 = r.cache.access(0x3000, false, 5);
    EXPECT_GE(t2, fill);
    // After the fill, hits are fast.
    Cycle t3 = r.cache.access(0x3000, false, fill + 10);
    EXPECT_EQ(t3, fill + 11);
}

TEST(Cache, MissRateComputation)
{
    Rig r(smallParams());
    r.cache.access(0x0, false, 0);   // miss
    r.cache.access(0x0, false, 60);  // hit
    r.cache.access(0x4, false, 70);  // hit
    r.cache.access(0x40, false, 80); // miss
    EXPECT_DOUBLE_EQ(r.cache.missRate(), 0.5);
    EXPECT_EQ(r.cache.accesses.value(),
              r.cache.hits.value() + r.cache.misses.value());
}

TEST(Cache, FlushInvalidatesEverything)
{
    Rig r(smallParams());
    r.cache.access(0x1000, false, 0);
    EXPECT_TRUE(r.cache.probe(0x1000));
    r.cache.flush();
    EXPECT_FALSE(r.cache.probe(0x1000));
}

TEST(Cache, InvalidGeometryRejected)
{
    setQuiet(true);
    config::MachineConfig cfg;
    cfg.l1 = CacheParams{100, 2, 32, 1, 1}; // not a multiple
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.l1 = CacheParams{32768, 2, 24, 1, 1}; // line not pow2
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.l1 = CacheParams{32768, 2, 32, 1, 0}; // no ports
    EXPECT_THROW(cfg.validate(), FatalError);
}

// ---- Parameterized geometry sweep: accounting invariants ----

struct Geometry
{
    std::uint32_t size;
    std::uint32_t assoc;
    std::uint32_t line;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheGeometry, AccountingInvariants)
{
    Geometry g = GetParam();
    Rig r(CacheParams{g.size, g.assoc, g.line, 1, 1});
    // A pseudo-random but deterministic stream of accesses.
    Rng rng(42);
    Cycle t = 0;
    for (int i = 0; i < 3000; ++i) {
        Addr a = static_cast<Addr>(rng.below(16 * 1024)) & ~3u;
        bool w = rng.chance(0.3);
        t += 2;
        r.cache.access(a, w, t);
    }
    EXPECT_EQ(r.cache.accesses.value(), 3000u);
    EXPECT_EQ(r.cache.hits.value() + r.cache.misses.value(), 3000u);
    EXPECT_EQ(r.cache.readAccesses.value() +
                  r.cache.writeAccesses.value(),
              3000u);
    EXPECT_LE(r.cache.writebacks.value(), r.cache.evictions.value());
    EXPECT_LE(r.cache.mshrMerges.value(), r.cache.misses.value());
    double mr = r.cache.missRate();
    EXPECT_GE(mr, 0.0);
    EXPECT_LE(mr, 1.0);
}

TEST_P(CacheGeometry, BiggerCacheNeverHurtsOnLinearScan)
{
    Geometry g = GetParam();
    Rig small(CacheParams{g.size, g.assoc, g.line, 1, 1});
    Rig big(CacheParams{g.size * 4, g.assoc, g.line, 1, 1});
    Cycle t = 0;
    // Two sequential sweeps over a buffer: the second sweep's hits
    // depend on capacity.
    for (int rep = 0; rep < 2; ++rep) {
        for (Addr a = 0; a < 8 * 1024; a += 4) {
            t += 1;
            small.cache.access(a, false, t);
            big.cache.access(a, false, t);
        }
    }
    EXPECT_LE(big.cache.misses.value(), small.cache.misses.value());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{512, 1, 32}, Geometry{512, 2, 32},
                      Geometry{2048, 1, 32}, Geometry{2048, 4, 32},
                      Geometry{2048, 1, 64}, Geometry{8192, 2, 16},
                      Geometry{32768, 2, 32}));
