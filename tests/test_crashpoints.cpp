/**
 * @file
 * Crash-consistency battery for the I/O layer and the farm built on
 * it. Three tiers:
 *
 *  1. FaultFs unit semantics: short writes tear then fail, EIO/ENOSPC
 *     are transient one-shots, a simulated crash is sticky (the dead
 *     backend rejects even reads).
 *  2. Durability-discipline regressions: the journal proves every
 *     atomic write runs write-temp / fsync-temp / rename / fsync-dir
 *     in exactly that order, for both writeFileAtomic and AtomicFile.
 *  3. Systematic crash-point exploration: run a small farm once to
 *     count its mutating I/O ops, then re-run it crashing at op 1,
 *     2, ..., N; after every crash, recover (requeue + fresh worker +
 *     merge) and demand the merged manifest byte-identical to the
 *     uninterrupted serial reference. There is no "lucky" crash
 *     point: the whole op domain is covered.
 *
 * Labelled "robust" in ctest.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "config/presets.hh"
#include "io/fault_fs.hh"
#include "io/vfs.hh"
#include "sim/farm.hh"
#include "sim/grid_spec.hh"
#include "sim/sweep.hh"
#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/file_claim.hh"
#include "util/log.hh"

using namespace ddsim;
using namespace ddsim::sim;

namespace {

std::string
freshDir(const std::string &leaf)
{
    std::string path = ::testing::TempDir() + "crashpt_" + leaf;
    std::filesystem::remove_all(path);
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class QuietGuard
{
  public:
    QuietGuard() { setQuiet(true); }
    ~QuietGuard() { setQuiet(false); }
};

/** Two points, one workload: the smallest grid whose farm exercises
 *  every artifact kind (grid, job, claim/lease, manifest, record,
 *  merged document) while keeping the crash-op domain explorable. */
GridSpec
tinyGrid()
{
    GridSpec spec;
    spec.title = "crash-point grid";
    std::uint64_t id = 0;
    for (int m : {0, 2}) {
        GridJob job;
        job.id = id++;
        job.workload = "li";
        job.scale = 4;
        job.seed = 0x5eed;
        job.maxInsts = 2000;
        job.warmupInsts = 100;
        job.cfg =
            m == 0 ? config::baseline(2) : config::decoupled(2, m);
        spec.jobs.push_back(std::move(job));
    }
    return spec;
}

/** The uninterrupted in-process reference manifest for tinyGrid(). */
const std::string &
tinyReference()
{
    static std::string bytes = [] {
        std::string path = freshDir("reference") + ".json";
        farm::runSerial(tinyGrid(), 1, RetryPolicy{}, 0, 0.0, path);
        return slurp(path);
    }();
    return bytes;
}

/** spool + drain with one worker + merge, all through io::vfs(). */
void
runTinyFarm(const std::string &root)
{
    farm::spoolGrid(tinyGrid(), root, 1);
    farm::WorkerOptions wo;
    wo.workerId = "w0";
    farm::runWorker(root, wo);
    farm::mergeSpool(root, root + "/merged.json",
                     root + "/farm.json");
}

} // namespace

// ---------------------------------------------------------------------
// FaultFs unit semantics
// ---------------------------------------------------------------------

TEST(FaultFs, ShortWriteTearsThePayloadThenRetrySucceeds)
{
    std::string dir = freshDir("short");
    ensureDir(dir);
    std::string path = dir + "/doc.json";

    io::FaultFs ff(io::realFs());
    ff.add({io::FsFaultKind::ShortWrite, 0, ".tmp", false});
    io::ScopedVfs scope(ff);

    // The torn write fails loudly and never reaches the final name:
    // only the temporary holds the prefix.
    EXPECT_THROW(io::vfs().writeFileAtomic(path, "0123456789"),
                 IoError);
    EXPECT_FALSE(io::vfs().exists(path));
    EXPECT_EQ(io::vfs().readFile(path + ".tmp"), "01234");

    // The fault is one-shot: a retry lands the full payload.
    io::vfs().writeFileAtomic(path, "0123456789");
    EXPECT_EQ(io::vfs().readFile(path), "0123456789");
}

TEST(FaultFs, EioAndEnospcAreTransientOneShots)
{
    std::string dir = freshDir("eio");
    ensureDir(dir);

    for (io::FsFaultKind kind :
         {io::FsFaultKind::Eio, io::FsFaultKind::Enospc}) {
        io::FaultFs ff(io::realFs());
        ff.add({kind, 1, "", false});
        std::string path =
            dir + "/" + io::fsFaultKindName(kind) + ".txt";
        EXPECT_THROW(ff.writeBytes(path, "x"), IoError);
        EXPECT_FALSE(ff.exists(path));
        ff.writeBytes(path, "x");
        EXPECT_EQ(ff.readFile(path), "x");
        EXPECT_EQ(ff.mutatingOps(), 2u);
    }
}

TEST(FaultFs, SimulatedCrashIsStickyEvenForReads)
{
    std::string dir = freshDir("sticky");
    ensureDir(dir);

    io::FaultFs ff(io::realFs());
    ff.add({io::FsFaultKind::CrashAtOp, 2, "", false});

    ff.writeBytes(dir + "/a", "a");
    EXPECT_FALSE(ff.crashed());
    EXPECT_THROW(ff.writeBytes(dir + "/b", "b"), io::SimulatedCrash);
    EXPECT_TRUE(ff.crashed());

    // Dead means dead: the op that crashed never happened, and no
    // later call — not even a read — can observe the filesystem.
    EXPECT_THROW(ff.writeBytes(dir + "/c", "c"), io::SimulatedCrash);
    EXPECT_THROW(ff.readFile(dir + "/a"), io::SimulatedCrash);
    EXPECT_THROW(ff.exists(dir + "/a"), io::SimulatedCrash);
    EXPECT_THROW(ff.listDir(dir), io::SimulatedCrash);

    // But the real filesystem below is intact minus the crashed op.
    EXPECT_TRUE(fileExists(dir + "/a"));
    EXPECT_FALSE(fileExists(dir + "/b"));
}

// ---------------------------------------------------------------------
// Durability-discipline regressions (fsync before rename)
// ---------------------------------------------------------------------

TEST(FaultFs, WriteFileAtomicJournalsTheFullDiscipline)
{
    std::string dir = freshDir("journal");
    ensureDir(dir);
    std::string path = dir + "/m.json";

    io::FaultFs ff(io::realFs());
    ff.writeFileAtomic(path, "{}");

    std::vector<std::string> expected = {
        "write:" + path + ".tmp",
        "fsync:" + path + ".tmp",
        "rename:" + path + ".tmp->" + path,
        "fsyncdir:" + dir,
    };
    EXPECT_EQ(ff.journal(), expected);
    EXPECT_EQ(slurp(path), "{}");
}

TEST(FaultFs, AtomicFileCommitsThroughTheSameDiscipline)
{
    std::string dir = freshDir("atomic");
    ensureDir(dir);
    std::string path = dir + "/out.json";

    io::FaultFs ff(io::realFs());
    {
        io::ScopedVfs scope(ff);
        AtomicFile out(path);
        out.stream() << "payload";
        out.commit();
    }

    // AtomicFile streams its bytes via ofstream, so the journal holds
    // exactly the commit: fsync the temp BEFORE renaming it onto the
    // final name, then fsync the directory. Any reordering regression
    // (the pre-hardening code renamed without fsync) breaks this.
    std::vector<std::string> expected = {
        "fsync:" + path + ".tmp",
        "rename:" + path + ".tmp->" + path,
        "fsyncdir:" + dir,
    };
    EXPECT_EQ(ff.journal(), expected);
    EXPECT_EQ(slurp(path), "payload");
}

TEST(FaultFs, CrashBetweenFsyncAndRenameLeavesTheOldFileIntact)
{
    std::string dir = freshDir("old_intact");
    ensureDir(dir);
    std::string path = dir + "/doc.json";
    io::realFs().writeFileAtomic(path, "old");

    io::FaultFs ff(io::realFs());
    // Op 1 = write tmp, op 2 = fsync tmp, op 3 = the rename: crash
    // there and the published name must still read "old".
    ff.add({io::FsFaultKind::CrashAtOp, 3, "", false});
    EXPECT_THROW(ff.writeFileAtomic(path, "new"),
                 io::SimulatedCrash);
    EXPECT_EQ(slurp(path), "old");
}

// ---------------------------------------------------------------------
// Systematic crash-point exploration
// ---------------------------------------------------------------------

TEST(CrashPoints, EveryCrashPointRecoversToIdenticalBytes)
{
    QuietGuard quiet;
    const GridSpec grid = tinyGrid();
    const std::string &reference = tinyReference();

    // Pass 0: clean run under a counting (fault-free) FaultFs, both
    // to learn the size of the crash-op domain and to prove the
    // instrumented stack itself reproduces the reference bytes.
    std::uint64_t totalOps = 0;
    {
        std::string root = freshDir("count");
        io::FaultFs ff(io::realFs());
        {
            io::ScopedVfs scope(ff);
            runTinyFarm(root);
        }
        totalOps = ff.mutatingOps();
        EXPECT_EQ(slurp(root + "/merged.json"), reference);
        std::filesystem::remove_all(root);
    }
    ASSERT_GT(totalOps, 20u); // sanity: the farm really went via vfs
    ASSERT_LT(totalOps, 500u); // and the domain stays explorable

    for (std::uint64_t k = 1; k <= totalOps; ++k) {
        std::string root = freshDir("op" + std::to_string(k));
        bool crashed = false;
        {
            io::FaultFs ff(io::realFs());
            ff.add({io::FsFaultKind::CrashAtOp, k, "", false});
            io::ScopedVfs scope(ff);
            try {
                runTinyFarm(root);
            } catch (const io::SimulatedCrash &) {
                crashed = true;
            }
            EXPECT_TRUE(ff.crashed()) << "op " << k;
        }
        // The crash must always surface: no catch(...) anywhere in
        // the farm may swallow a dying process.
        ASSERT_TRUE(crashed) << "op " << k;

        // Recovery, on the real filesystem, exactly as an operator
        // would: a spool without its grid never got durable, so start
        // over; otherwise requeue whatever the crash stranded and
        // drain with a fresh worker.
        farm::Spool sp(root);
        if (!fileExists(sp.gridPath())) {
            std::filesystem::remove_all(root);
            farm::spoolGrid(grid, root, 1);
        } else {
            farm::requeueIncomplete(root, false);
        }
        farm::WorkerOptions wo;
        wo.workerId = "w1";
        farm::runWorker(root, wo);
        farm::mergeSpool(root, root + "/merged.json",
                         root + "/farm.json");
        EXPECT_EQ(slurp(root + "/merged.json"), reference)
            << "crash at op " << k << " did not recover cleanly";
        std::filesystem::remove_all(root);
    }
}
