/**
 * @file
 * Sampled-engine accuracy and plumbing suite.
 *
 * The headline pin: under the default SamplingPlan, every registry
 * workload's sampled IPC stays within 2% of the full-run IPC at the
 * registry default scale (the acceptance bound of the SMARTS-style
 * engine; the measured worst case when the plan was tuned was 1.35%,
 * so the pin has real margin without being flaky — the engine is
 * deterministic, a drift here means the warming or jitter logic
 * changed). Plus: the error-bar block, plan validation, engine-name
 * parsing with did-you-mean, and trace-replay equivalence of the
 * sampled estimate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "config/presets.hh"
#include "sim/runner.hh"
#include "util/error.hh"
#include "util/log.hh"
#include "vm/trace.hh"
#include "workloads/common.hh"

using namespace ddsim;
using namespace ddsim::sim;

namespace {

prog::Program
defaultScaleProgram(const workloads::WorkloadInfo &w)
{
    workloads::WorkloadParams p;
    p.scale = w.defaultScale;
    return workloads::build(w.name, p);
}

} // namespace

TEST(Sampled, DefaultPlanWithinTwoPercentOnEveryWorkload)
{
    const config::MachineConfig cfg = config::decoupledOptimized(3, 2);
    for (const workloads::WorkloadInfo &w : workloads::all()) {
        SCOPED_TRACE(w.name);
        prog::Program program = defaultScaleProgram(w);

        SimResult full = run(program, cfg);
        RunOptions so;
        so.engine = Engine::Sampled;
        SimResult sampled = run(program, cfg, so);

        // The estimate covers the whole program, not just the
        // measured windows.
        EXPECT_EQ(sampled.committed, full.committed);
        ASSERT_GT(full.ipc, 0.0);
        double errPct =
            (sampled.ipc - full.ipc) / full.ipc * 100.0;
        EXPECT_LE(std::fabs(errPct), 2.0)
            << "sampled " << sampled.ipc << " vs full " << full.ipc;

        // Error-bar block: enough windows for a meaningful CI, and
        // the manifest invariant ipc == committed/cycles holds.
        EXPECT_TRUE(sampled.sampling.active);
        EXPECT_GT(sampled.sampling.windows, 1u);
        EXPECT_GE(sampled.sampling.ipcCi95, 0.0);
        ASSERT_GT(sampled.cycles, 0u);
        EXPECT_DOUBLE_EQ(sampled.ipc,
                         static_cast<double>(sampled.committed) /
                             static_cast<double>(sampled.cycles));
    }
}

TEST(Sampled, DeterministicAndTraceReplayEquivalent)
{
    // Same plan, same program: two sampled runs are identical, and a
    // sampled run over a recorded trace matches the live-source one
    // (the jittered schedule is seeded deterministically).
    workloads::WorkloadParams p;
    p.scale = workloads::find("li")->defaultScale / 2;
    prog::Program program = workloads::build("li", p);
    const config::MachineConfig cfg = config::decoupledOptimized(3, 2);

    RunOptions so;
    so.engine = Engine::Sampled;
    SimResult a = run(program, cfg, so);
    SimResult b = run(program, cfg, so);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.sampling.windows, b.sampling.windows);
    EXPECT_EQ(a.sampling.detailCycles, b.sampling.detailCycles);

    RunOptions replayOpts = so;
    replayOpts.trace = std::make_shared<const vm::RecordedTrace>(
        vm::RecordedTrace::record(program));
    SimResult c = run(program, cfg, replayOpts);
    EXPECT_EQ(a.cycles, c.cycles);
    EXPECT_EQ(a.committed, c.committed);
    EXPECT_EQ(a.sampling.detailCycles, c.sampling.detailCycles);
}

TEST(Sampled, RejectsInvalidPlansAndIncompatibleOptions)
{
    setQuiet(true);
    workloads::WorkloadParams p;
    p.scale = 10;
    prog::Program program = workloads::build("li", p);
    const config::MachineConfig cfg = config::baseline(2);

    RunOptions so;
    so.engine = Engine::Sampled;

    RunOptions zeroDetail = so;
    zeroDetail.sampling.detail = 0;
    EXPECT_THROW(run(program, cfg, zeroDetail), ConfigError);

    RunOptions overlong = so;
    overlong.sampling.warmup =
        overlong.sampling.period - overlong.sampling.detail + 1;
    EXPECT_THROW(run(program, cfg, overlong), ConfigError);

    RunOptions warmed = so;
    warmed.warmupInsts = 100;
    EXPECT_THROW(run(program, cfg, warmed), ConfigError);

    RunOptions traced = so;
    traced.tracePath = ::testing::TempDir() + "sampled_reject.trace";
    EXPECT_THROW(run(program, cfg, traced), ConfigError);
    setQuiet(false);
}

TEST(Sampled, EngineNamesRoundTripAndRejectWithSuggestion)
{
    for (Engine e : {Engine::Auto, Engine::Live, Engine::Replay,
                     Engine::Batched, Engine::Sampled})
        EXPECT_EQ(engineFromName(engineName(e)), e);

    setQuiet(true);
    EXPECT_THROW(engineFromName("warp-drive"), ConfigError);
    try {
        engineFromName("sampeld");
        FAIL() << "engineFromName should have thrown";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("did you mean 'sampled'"),
                  std::string::npos)
            << e.what();
    }
    setQuiet(false);
}
