/**
 * @file
 * ProgramBuilder tests: label fixups, pseudo-instructions, frame
 * prologue/epilogue shape, and data segment management.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "isa/disasm.hh"
#include "prog/builder.hh"
#include "util/log.hh"

using namespace ddsim;
using namespace ddsim::prog;
using namespace ddsim::isa;
namespace reg = ddsim::isa::reg;

TEST(Builder, ForwardBranchFixup)
{
    ProgramBuilder b("t");
    Label target = b.newLabel();
    b.beq(reg::t0, reg::t1, target); // idx 0
    b.nop();                         // idx 1
    b.bind(target);                  // idx 2
    b.halt();
    Program p = b.finish();
    Inst br = p.fetch(0);
    EXPECT_EQ(br.op, OpCode::BEQ);
    // target = pc + 1 + imm -> 2 = 0 + 1 + imm -> imm = 1.
    EXPECT_EQ(br.imm, 1);
}

TEST(Builder, BackwardBranchFixup)
{
    ProgramBuilder b("t");
    Label top = b.here();
    b.nop();
    b.bne(reg::t0, reg::zero, top); // idx 1 -> target 0: imm = -2
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.fetch(1).imm, -2);
}

TEST(Builder, JumpTargetsAreAbsolute)
{
    ProgramBuilder b("t");
    Label fn = b.newLabel("fn");
    b.jal(fn);  // idx 0
    b.halt();   // idx 1
    b.bind(fn); // idx 2
    b.jr(reg::ra);
    Program p = b.finish();
    EXPECT_EQ(p.fetch(0).target, 2u);
    EXPECT_EQ(p.symbol("fn"), 2u);
}

TEST(Builder, UnboundUsedLabelIsFatal)
{
    setQuiet(true);
    ProgramBuilder b("t");
    Label missing = b.newLabel("missing");
    b.j(missing);
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Builder, UnusedUnboundLabelIsFine)
{
    ProgramBuilder b("t");
    (void)b.newLabel("never_used");
    b.halt();
    EXPECT_NO_THROW(b.finish());
}

TEST(Builder, DoubleBindIsFatal)
{
    setQuiet(true);
    ProgramBuilder b("t");
    Label l = b.newLabel("l");
    b.bind(l);
    b.nop();
    EXPECT_THROW(b.bind(l), FatalError);
}

TEST(Builder, LiSmallUsesOneInstruction)
{
    ProgramBuilder b("t");
    b.li(reg::t0, 100);
    b.li(reg::t1, -3000);
    Program p = b.finish();
    EXPECT_EQ(p.textSize(), 2u);
    EXPECT_EQ(p.fetch(0).op, OpCode::ADDI);
    EXPECT_EQ(p.fetch(0).imm, 100);
}

TEST(Builder, LiLargeUsesLuiOri)
{
    ProgramBuilder b("t");
    b.li(reg::t0, 0x12345678);
    Program p = b.finish();
    ASSERT_EQ(p.textSize(), 2u);
    EXPECT_EQ(p.fetch(0).op, OpCode::LUI);
    EXPECT_EQ(p.fetch(0).imm, 0x1234);
    EXPECT_EQ(p.fetch(1).op, OpCode::ORI);
    EXPECT_EQ(p.fetch(1).imm, 0x5678);
}

TEST(Builder, LiNegativeRoundTrips)
{
    // Value reconstruction is validated functionally in test_vm; here
    // just check the encoding pattern exists for a negative constant.
    ProgramBuilder b("t");
    b.li(reg::t0, -100000);
    Program p = b.finish();
    EXPECT_GE(p.textSize(), 2u);
}

TEST(Builder, PrologueMarksSavesLocal)
{
    ProgramBuilder b("t");
    FrameSpec f;
    f.localWords = 3;
    f.savedRegs = {reg::s0, reg::s1};
    f.saveRa = true;
    b.prologue(f);
    Program p = b.finish();

    // addi sp,sp,-24; sw ra; sw s0; sw s1.
    EXPECT_EQ(p.textSize(), 4u);
    Inst adj = p.fetch(0);
    EXPECT_EQ(adj.op, OpCode::ADDI);
    EXPECT_EQ(adj.rt, reg::sp);
    EXPECT_EQ(adj.imm, -24);
    for (std::uint32_t i = 1; i < 4; ++i) {
        Inst sw = p.fetch(i);
        EXPECT_EQ(sw.op, OpCode::SW);
        EXPECT_EQ(sw.rs, reg::sp);
        EXPECT_TRUE(sw.localHint) << "save " << i << " not marked local";
    }
    // Saves land above the locals: slots 3, 4, 5.
    EXPECT_EQ(p.fetch(1).imm, 12);
    EXPECT_EQ(p.fetch(2).imm, 16);
    EXPECT_EQ(p.fetch(3).imm, 20);
}

TEST(Builder, EpilogueMirrorsPrologue)
{
    ProgramBuilder b("t");
    FrameSpec f;
    f.localWords = 1;
    f.savedRegs = {reg::s0};
    b.epilogue(f);
    Program p = b.finish();
    // lw ra; lw s0; addi sp,+12; jr ra.
    ASSERT_EQ(p.textSize(), 4u);
    EXPECT_EQ(p.fetch(0).op, OpCode::LW);
    EXPECT_TRUE(p.fetch(0).localHint);
    EXPECT_EQ(p.fetch(2).op, OpCode::ADDI);
    EXPECT_EQ(p.fetch(2).imm, 12);
    EXPECT_EQ(p.fetch(3).op, OpCode::JR);
    EXPECT_EQ(p.fetch(3).rs, reg::ra);
}

TEST(Builder, EmptyFrameEpilogueIsJustReturn)
{
    ProgramBuilder b("t");
    FrameSpec f;
    f.saveRa = false;
    b.epilogue(f);
    Program p = b.finish();
    ASSERT_EQ(p.textSize(), 1u);
    EXPECT_EQ(p.fetch(0).op, OpCode::JR);
}

TEST(Builder, FrameSpecSizes)
{
    FrameSpec f;
    f.localWords = 2;
    f.savedRegs = {reg::s0, reg::s1, reg::s2};
    f.saveRa = true;
    EXPECT_EQ(f.frameWords(), 6);
    EXPECT_EQ(f.frameBytes(), 24);
}

TEST(Builder, DataSegment)
{
    ProgramBuilder b("t");
    Addr w = b.dataWord(0xdeadbeef);
    EXPECT_EQ(w, layout::DataBase);
    Addr arr = b.dataWords(4);
    EXPECT_EQ(arr, layout::DataBase + 4);
    b.dataAlign(8);
    Addr d = b.dataDouble(1.5);
    EXPECT_EQ(d % 8, 0u);
    b.halt();
    Program p = b.finish();
    EXPECT_GE(p.dataSegment().size(), 4u + 16u + 8u);
    // First word content.
    Word v;
    std::memcpy(&v, p.dataSegment().data(), 4);
    EXPECT_EQ(v, 0xdeadbeefu);
}

TEST(Builder, LocalSlotAccessorsAnnotate)
{
    ProgramBuilder b("t");
    b.storeLocal(reg::t0, 2);
    b.loadLocal(reg::t1, 2);
    Program p = b.finish();
    EXPECT_EQ(p.fetch(0).op, OpCode::SW);
    EXPECT_EQ(p.fetch(0).imm, 8);
    EXPECT_TRUE(p.fetch(0).localHint);
    EXPECT_EQ(p.fetch(1).op, OpCode::LW);
    EXPECT_TRUE(p.fetch(1).localHint);
}

TEST(Program, SymbolsAndFetchBounds)
{
    setQuiet(true);
    ProgramBuilder b("t");
    b.here("start");
    b.halt();
    Program p = b.finish();
    EXPECT_TRUE(p.hasSymbol("start"));
    EXPECT_THROW(p.symbol("nope"), FatalError);
    EXPECT_THROW(p.fetch(99), FatalError);
}

TEST(Builder, UseAfterFinishPanics)
{
    setQuiet(true);
    ProgramBuilder b("t");
    b.halt();
    b.finish();
    EXPECT_THROW(b.nop(), PanicError);
}
