/**
 * @file
 * Observability layer tests: the streaming JSON writer, stats-tree
 * JSON export, run manifests, interval sampling, and the binary
 * pipeline trace (writer, reader, and agreement with the run's
 * results).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>

#include "config/presets.hh"
#include "obs/manifest.hh"
#include "obs/pipeline_trace.hh"
#include "obs/sampler.hh"
#include "obs/version.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "stats/group.hh"
#include "stats/histogram.hh"
#include "stats/json.hh"
#include "stats/stat.hh"
#include "util/json.hh"
#include "util/log.hh"
#include "workloads/common.hh"

using namespace ddsim;

namespace {

prog::Program
program(const char *name = "li", std::uint64_t scale = 10)
{
    workloads::WorkloadParams p;
    p.scale = scale;
    return workloads::build(name, p);
}

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(JsonWriter, CompactGolden)
{
    std::ostringstream ss;
    {
        JsonWriter w(ss, 0);
        w.beginObject();
        w.field("a", std::uint64_t{1});
        w.key("b");
        w.beginArray();
        w.value(1);
        w.value(2);
        w.beginObject();
        w.field("c", "x\"y");
        w.endObject();
        w.endArray();
        w.field("d", true);
        w.key("e");
        w.valueNull();
        w.endObject();
        EXPECT_TRUE(w.balanced());
    }
    EXPECT_EQ(ss.str(),
              "{\"a\":1,\"b\":[1,2,{\"c\":\"x\\\"y\"}],"
              "\"d\":true,\"e\":null}");
}

TEST(JsonWriter, NumbersRoundTrip)
{
    std::ostringstream ss;
    JsonWriter w(ss, 0);
    w.beginArray();
    w.value(std::uint64_t{18446744073709551615ull});
    w.value(2.5);
    w.value(3.0); // exact integer double prints without exponent
    w.value(0.0 / 0.0); // NaN -> null
    w.endArray();
    EXPECT_EQ(ss.str(), "[18446744073709551615,2.5,3,null]");
}

TEST(StatsJson, SchemaAndValues)
{
    stats::Group root(nullptr, "");
    stats::Group cpu(&root, "cpu");
    stats::Scalar cycles(&cpu, "cycles", "cycle count");
    cycles += 12345678901234ull;
    stats::Histogram occ(&cpu, "occ", "occupancy", 4, 2);
    occ.sample(1);
    occ.sample(100); // overflow

    std::ostringstream ss;
    stats::dumpJson(root, ss);
    std::string out = ss.str();
    EXPECT_NE(out.find("\"schema\": \"ddsim-stats-v1\""),
              std::string::npos);
    // Scalars keep full uint64 precision.
    EXPECT_NE(out.find("12345678901234"), std::string::npos);
    // Histograms carry geometry and overflow.
    EXPECT_NE(out.find("\"bucket_width\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"overflow\": 1"), std::string::npos);
    EXPECT_NE(out.find("\"name\": \"cpu\""), std::string::npos);
}

TEST(Sampler, CumulativeRowsAndDeltas)
{
    stats::Group root(nullptr, "");
    stats::Group cpu(&root, "cpu");
    stats::Scalar counter(&cpu, "ctr", "");

    obs::Sampler s(root, 100);
    ASSERT_EQ(s.numColumns(), 1u);
    EXPECT_EQ(s.columns()[0], "cpu.ctr");

    counter += 10;
    s.onCommit(100, 250);
    counter += 5;
    s.onCommit(199, 498); // below the next boundary: no row
    s.onCommit(200, 500);
    s.finish(230, 575);

    ASSERT_EQ(s.numRows(), 3u);
    EXPECT_EQ(s.rowInstructions(0), 100u);
    EXPECT_EQ(s.rowCycle(1), 500u);
    EXPECT_EQ(s.rowInstructions(2), 230u); // final partial interval
    EXPECT_DOUBLE_EQ(s.valueAt(0, 0), 10.0);
    EXPECT_DOUBLE_EQ(s.valueAt(1, 0), 15.0); // cumulative
    EXPECT_DOUBLE_EQ(s.deltaAt(0, 0), 10.0);
    EXPECT_DOUBLE_EQ(s.deltaAt(1, 0), 5.0); // per-interval delta
    EXPECT_DOUBLE_EQ(s.deltaAt(2, 0), 0.0);

    // finish is idempotent per endpoint.
    s.finish(230, 575);
    EXPECT_EQ(s.numRows(), 3u);
}

TEST(Sampler, FilterSelectsSubtrees)
{
    stats::Group root(nullptr, "");
    stats::Group cpu(&root, "cpu");
    stats::Group mem(&root, "mem");
    stats::Scalar a(&cpu, "a", "");
    stats::Scalar b(&mem, "b", "");
    stats::Scalar c(&mem, "bb", "");

    obs::Sampler cpuOnly(root, 10, "cpu");
    ASSERT_EQ(cpuOnly.numColumns(), 1u);
    EXPECT_EQ(cpuOnly.columns()[0], "cpu.a");

    // Prefixes match at dot boundaries: "mem.b" must not pull in
    // "mem.bb".
    obs::Sampler oneStat(root, 10, "mem.b");
    ASSERT_EQ(oneStat.numColumns(), 1u);
    EXPECT_EQ(oneStat.columns()[0], "mem.b");
}

TEST(Sampler, DumpFormats)
{
    stats::Group root(nullptr, "");
    stats::Scalar n(&root, "n", "");
    obs::Sampler s(root, 50);
    n += 7;
    s.onCommit(50, 100);

    std::ostringstream csv;
    s.dumpCsv(csv);
    EXPECT_NE(csv.str().find("instructions,cycle,n"),
              std::string::npos);
    EXPECT_NE(csv.str().find("50,100,7"), std::string::npos);

    std::ostringstream json;
    s.dumpJson(json);
    EXPECT_NE(json.str().find("\"schema\": \"ddsim-samples-v1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"delta\""), std::string::npos);
}

TEST(PipelineTrace, RoundTripsRecords)
{
    std::string path = tempPath("roundtrip.trace");
    {
        obs::PipelineTracer t(path, "wl", "(2+2)", "lbl", 4);
        // Two instructions: fetch both, dispatch into slots 0/1,
        // issue, commit.
        t.onFetch(1);
        t.onFetch(1);
        t.onDispatch(0, 10, 3);
        t.onDispatch(1, 11, 3);
        t.onIssue(0, 5);

        obs::TraceRecord r0;
        r0.seq = 10;
        r0.pcIdx = 42;
        r0.isLoad = true;
        r0.lvaqStream = true;
        r0.fastForwarded = true;
        r0.dispatchCycle = 3;
        r0.queueCycle = 3;
        r0.accessCycle = 6;
        r0.wbCycle = 7;
        r0.commitCycle = 9;
        t.onCommit(0, r0);

        obs::TraceRecord r1;
        r1.seq = 11;
        r1.pcIdx = 43;
        r1.dispatchCycle = 3;
        r1.wbCycle = 8;
        r1.commitCycle = 9;
        t.onCommit(1, r1);
        t.finish();
        EXPECT_EQ(t.records(), 2u);
    }

    obs::TraceReader reader(path);
    EXPECT_EQ(reader.header().workload, "wl");
    EXPECT_EQ(reader.header().notation, "(2+2)");
    EXPECT_EQ(reader.header().label, "lbl");
    EXPECT_EQ(reader.header().recordCount, 2u);

    obs::TraceRecord r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.seq, 10u);
    EXPECT_EQ(r.pcIdx, 42u);
    EXPECT_TRUE(r.isLoad);
    EXPECT_TRUE(r.lvaqStream);
    EXPECT_TRUE(r.fastForwarded);
    EXPECT_FALSE(r.isStore);
    EXPECT_EQ(r.fetchCycle, 1u); // filled in from the onFetch hook
    EXPECT_EQ(r.dispatchCycle, 3u);
    EXPECT_EQ(r.queueCycle, 3u);
    EXPECT_EQ(r.issueCycle, 5u); // filled in from the onIssue hook
    EXPECT_EQ(r.accessCycle, 6u);
    EXPECT_EQ(r.wbCycle, 7u);
    EXPECT_EQ(r.commitCycle, 9u);

    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.seq, 11u);
    EXPECT_EQ(r.issueCycle, obs::kNoCycle); // never issued
    EXPECT_EQ(r.accessCycle, obs::kNoCycle);
    EXPECT_FALSE(reader.next(r));
}

TEST(PipelineTrace, UnfinalizedFileIsFatal)
{
    setQuiet(true);
    std::string path = tempPath("unfinalized.trace");
    {
        // A header whose record count was never patched (writer died
        // before finish()).
        std::ofstream os(path, std::ios::binary);
        os.write(obs::kTraceMagic, 8);
        std::uint32_t ver = obs::kTraceVersion;
        os.write(reinterpret_cast<const char *>(&ver), 4);
        std::uint16_t zero = 0;
        for (int i = 0; i < 3; ++i)
            os.write(reinterpret_cast<const char *>(&zero), 2);
        std::uint64_t count = ~std::uint64_t{0};
        os.write(reinterpret_cast<const char *>(&count), 8);
    }
    EXPECT_THROW(obs::TraceReader reader(path), FatalError);
}

TEST(Manifest, RunCaptureMatchesResult)
{
    auto prog = program("li", 5);
    sim::RunOptions opts;
    opts.captureManifest = true;
    opts.label = "unit";
    sim::SimResult r = sim::run(prog, config::decoupled(2, 2), opts);

    ASSERT_FALSE(r.manifestJson.empty());
    const std::string &m = r.manifestJson;
    EXPECT_NE(m.find("\"schema\": \"ddsim-manifest-v1\""),
              std::string::npos);
    EXPECT_NE(m.find("\"workload\": \"li\""), std::string::npos);
    EXPECT_NE(m.find("\"label\": \"unit\""), std::string::npos);
    EXPECT_NE(m.find("\"notation\": \"(2+2)\""), std::string::npos);
    EXPECT_NE(m.find(format("\"committed\": %llu",
                            (unsigned long long)r.committed)),
              std::string::npos);
    // The full stat tree rides along.
    EXPECT_NE(m.find("\"stats\""), std::string::npos);
    EXPECT_NE(m.find("\"cycles\""), std::string::npos);
}

TEST(Manifest, SweepAggregatesRunsInOrder)
{
    auto prog = std::make_shared<const prog::Program>(program("li", 5));
    sim::SweepRunner runner(2);
    sim::RunOptions with;
    with.captureManifest = true;
    runner.submit(prog, config::baseline(2), with);
    runner.submit(prog, config::baseline(2)); // no manifest -> null
    runner.submit(prog, config::decoupled(2, 2), with);
    std::vector<sim::SimResult> results = runner.collect();

    std::ostringstream ss;
    sim::writeSweepManifest("unit sweep", results, ss);
    std::string out = ss.str();
    EXPECT_NE(out.find("\"schema\": \"ddsim-sweep-manifest-v1\""),
              std::string::npos);
    EXPECT_NE(out.find("\"title\": \"unit sweep\""), std::string::npos);
    EXPECT_NE(out.find("\"num_runs\": 3"), std::string::npos);
    // The slot without a captured manifest is an explicit null so
    // array indices keep lining up with the submission grid.
    EXPECT_NE(out.find("null"), std::string::npos);
    EXPECT_NE(out.find("(2+2)"), std::string::npos);
}

TEST(ObsIntegration, TraceAgreesWithRunResult)
{
    auto prog = program("li", 5);
    std::string path = tempPath("li.trace");
    sim::RunOptions opts;
    opts.tracePath = path;
    sim::SimResult r =
        sim::run(prog, config::decoupledOptimized(2, 2), opts);

    obs::TraceReader reader(path);
    obs::TraceRecord rec;
    std::uint64_t count = 0, lvaqLoads = 0, prevSeq = 0;
    std::uint64_t prevCommit = 0;
    while (reader.next(rec)) {
        if (count > 0) {
            EXPECT_GT(rec.seq, prevSeq);         // commit order
            EXPECT_GE(rec.commitCycle, prevCommit);
        }
        prevSeq = rec.seq;
        prevCommit = rec.commitCycle;
        // Stage cycles never run backwards where known.
        if (rec.dispatchCycle != obs::kNoCycle)
            EXPECT_LE(rec.dispatchCycle, rec.commitCycle);
        if (rec.wbCycle != obs::kNoCycle)
            EXPECT_LE(rec.wbCycle, rec.commitCycle);
        lvaqLoads += rec.isLoad && rec.lvaqStream;
        ++count;
    }
    EXPECT_EQ(reader.header().recordCount, count);
    // One record per committed instruction, and the per-stream load
    // count agrees with the pipeline's own LVAQ counter.
    EXPECT_EQ(count, r.committed);
    EXPECT_EQ(lvaqLoads, r.lvaqLoads);
}

TEST(ObsIntegration, SampleFileEndsAtFinalTotals)
{
    auto prog = program("li", 5);
    std::string path = tempPath("li_samples.json");
    sim::RunOptions opts;
    opts.sampleInterval = 5000;
    opts.samplePath = path;
    opts.sampleFilter = "cpu.committed,cpu.cycles";
    sim::SimResult r = sim::run(prog, config::baseline(2), opts);

    std::string out = slurp(path);
    EXPECT_NE(out.find("\"schema\": \"ddsim-samples-v1\""),
              std::string::npos);
    EXPECT_NE(out.find("cpu.committed"), std::string::npos);
    // The last row is the run's endpoint: totals equal the result.
    EXPECT_NE(out.find(format("%llu", (unsigned long long)r.committed)),
              std::string::npos);
    EXPECT_NE(out.find(format("%llu", (unsigned long long)r.cycles)),
              std::string::npos);
}

TEST(ObsIntegration, VersionStringsAreNonEmpty)
{
    EXPECT_STREQ(obs::simulatorName(), "ddsim");
    EXPECT_NE(std::string(obs::simulatorVersion()), "");
    EXPECT_NE(std::string(obs::gitDescribe()), "");
}
