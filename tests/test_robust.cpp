/**
 * @file
 * Fault-tolerance suite: the error taxonomy, run guards (cycle and
 * wall-clock budgets), the deadlock watchdog, the crash black box,
 * atomic observability writes, TraceReader hardening against
 * corrupted input, the deterministic fault-injection harness, and
 * sweep failure isolation (retry, quarantine, degraded manifests).
 *
 * Labelled "robust" in ctest; CI runs it in the normal lane and again
 * under ASan/UBSan so the corruption fuzz tests have teeth.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "config/presets.hh"
#include "cpu/pipeline.hh"
#include "obs/blackbox.hh"
#include "obs/pipeline_trace.hh"
#include "robust/fault_inject.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "stats/group.hh"
#include "util/atomic_file.hh"
#include "util/log.hh"
#include "workloads/common.hh"

using namespace ddsim;

namespace {

prog::Program
program(const char *name = "li", std::uint64_t scale = 5)
{
    workloads::WorkloadParams p;
    p.scale = scale;
    return workloads::build(name, p);
}

std::shared_ptr<const prog::Program>
programShared(const char *name, std::uint64_t scale = 5)
{
    return std::make_shared<const prog::Program>(program(name, scale));
}

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Decode a whole ddtrace file; returns the record count or throws. */
std::uint64_t
readAllTrace(const std::string &path)
{
    obs::TraceReader reader(path);
    obs::TraceRecord rec;
    std::uint64_t n = 0;
    while (reader.next(rec))
        ++n;
    return n;
}

/** Write a small, valid pipeline trace and return its path. */
std::string
writeValidTrace(const std::string &leaf)
{
    std::string path = tempPath(leaf);
    obs::PipelineTracer t(path, "wl", "(2+2)", "fuzz", 4);
    for (int i = 0; i < 4; ++i)
        t.onFetch(1);
    for (int i = 0; i < 4; ++i) {
        t.onDispatch(i, 10 + i, 3);
        t.onIssue(i, 5 + i);
        obs::TraceRecord r;
        r.seq = 10 + static_cast<std::uint64_t>(i);
        r.pcIdx = 100 + static_cast<std::uint32_t>(i);
        r.isLoad = (i & 1) != 0;
        r.dispatchCycle = 3;
        r.wbCycle = 7 + static_cast<Cycle>(i);
        r.commitCycle = 9 + static_cast<Cycle>(i);
        t.onCommit(i, r);
    }
    t.finish();
    return path;
}

class QuietGuard
{
  public:
    QuietGuard() { setQuiet(true); }
    ~QuietGuard() { setQuiet(false); }
};

} // namespace

// ---------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------

TEST(ErrorTaxonomy, KindsTransienceAndContext)
{
    ConfigError ce("l1.ports", "l1.ports: at least one port required");
    EXPECT_EQ(ce.kind(), "config");
    EXPECT_EQ(ce.field(), "l1.ports");
    EXPECT_FALSE(ce.transient());
    ASSERT_FALSE(ce.context().empty());
    EXPECT_EQ(ce.context()[0].first, "field");
    EXPECT_EQ(ce.context()[0].second, "l1.ports");

    IoError io("/no/such/file", "cannot open");
    EXPECT_EQ(io.kind(), "io");
    EXPECT_TRUE(io.transient());
    EXPECT_EQ(io.path(), "/no/such/file");

    TraceCorruptError tc("x.trace", 42, "bad varint");
    EXPECT_EQ(tc.kind(), "trace-corrupt");
    EXPECT_EQ(tc.byteOffset(), 42u);
    EXPECT_FALSE(tc.transient());

    DeadlockInfo di;
    di.cycle = 200123;
    di.sinceCommit = 100001;
    di.headSeq = 7;
    di.headDisasm = "lw r1, 0(sp)";
    di.robOccupancy = 12;
    DeadlockError dl(di, "no forward progress");
    EXPECT_EQ(dl.kind(), "deadlock");
    EXPECT_EQ(dl.info().headSeq, 7u);
    bool sawHeadSeq = false;
    for (const auto &kv : dl.context())
        sawHeadSeq |= kv.first == "head_seq" && kv.second == "7";
    EXPECT_TRUE(sawHeadSeq);

    BudgetExceededError be("cycles", 1000, 1001, "over budget");
    EXPECT_EQ(be.kind(), "budget");
    EXPECT_EQ(be.budget(), "cycles");
    EXPECT_EQ(be.limit(), 1000u);
    EXPECT_EQ(be.actual(), 1001u);
    EXPECT_FALSE(be.transient());
}

TEST(ErrorTaxonomy, HierarchyMatchesCatchSites)
{
    // User-facing failures stay catchable as FatalError (existing
    // call sites); runtime supervision errors are SimError only.
    ConfigError ce("f", "f: bad");
    ProgramError pe("bad program");
    IoError io("p", "bad io");
    TraceCorruptError tc("p", 0, "bad trace");
    EXPECT_NE(dynamic_cast<FatalError *>(&ce), nullptr);
    EXPECT_NE(dynamic_cast<FatalError *>(&pe), nullptr);
    EXPECT_NE(dynamic_cast<FatalError *>(&io), nullptr);
    EXPECT_NE(dynamic_cast<FatalError *>(&tc), nullptr);

    DeadlockError dl(DeadlockInfo{}, "stuck");
    BudgetExceededError be("wall", 1, 2, "slow");
    PanicError pa("bug");
    EXPECT_EQ(dynamic_cast<FatalError *>(&dl), nullptr);
    EXPECT_EQ(dynamic_cast<FatalError *>(&be), nullptr);
    EXPECT_EQ(dynamic_cast<FatalError *>(&pa), nullptr);
    EXPECT_NE(dynamic_cast<SimError *>(&dl), nullptr);
    EXPECT_NE(dynamic_cast<SimError *>(&be), nullptr);
    EXPECT_EQ(pa.kind(), "internal");
}

TEST(ErrorTaxonomy, RaisePreservesDynamicType)
{
    QuietGuard q;
    EXPECT_THROW(raise(ConfigError("f", "f: nope")), ConfigError);
    EXPECT_THROW(raise(IoError("p", "nope")), IoError);
    EXPECT_THROW(raise(BudgetExceededError("cycles", 1, 2, "x")),
                 BudgetExceededError);
    // ... and the base classes still catch them.
    EXPECT_THROW(raise(ConfigError("f", "f: nope")), FatalError);
    EXPECT_THROW(raise(DeadlockError(DeadlockInfo{}, "x")), SimError);
}

// ---------------------------------------------------------------------
// Config validation names the offending field
// ---------------------------------------------------------------------

TEST(ConfigValidation, FieldNamesRideOnTheError)
{
    QuietGuard q;
    auto fieldOf = [](const config::MachineConfig &cfg) {
        try {
            cfg.validate();
        } catch (const ConfigError &e) {
            return e.field();
        }
        return std::string();
    };

    config::MachineConfig cfg = config::baseline(2);
    cfg.robSize = 0;
    EXPECT_EQ(fieldOf(cfg), "robSize");

    cfg = config::baseline(2);
    cfg.fetchWidth = -1;
    EXPECT_EQ(fieldOf(cfg), "fetchWidth");

    cfg = config::baseline(2);
    cfg.l1.ports = 0;
    EXPECT_EQ(fieldOf(cfg), "l1.ports");

    cfg = config::baseline(2);
    cfg.l1.lineBytes = 48; // not a power of two
    EXPECT_EQ(fieldOf(cfg), "l1.lineBytes");

    cfg = config::decoupled(2, 2);
    cfg.lvc.sizeBytes = 0;
    EXPECT_EQ(fieldOf(cfg), "lvc.sizeBytes");

    // Valid presets pass.
    EXPECT_NO_THROW(config::baseline(2).validate());
    EXPECT_NO_THROW(config::decoupled(2, 2).validate());
}

// ---------------------------------------------------------------------
// Run guards: cycle and wall-clock budgets
// ---------------------------------------------------------------------

TEST(RunGuards, CycleBudgetRaisesTypedError)
{
    QuietGuard q;
    auto prog = program("li", 5);
    sim::RunOptions opts;
    opts.maxCycles = 500;
    try {
        sim::run(prog, config::baseline(2), opts);
        FAIL() << "expected BudgetExceededError";
    } catch (const BudgetExceededError &e) {
        EXPECT_EQ(e.budget(), "cycles");
        EXPECT_EQ(e.limit(), 500u);
        EXPECT_GT(e.actual(), e.limit());
    }
}

TEST(RunGuards, WallBudgetRaisesTypedError)
{
    QuietGuard q;
    auto prog = program("li", 5);
    sim::RunOptions opts;
    opts.maxWallSeconds = 1e-9; // fires on the first rate-limited check
    try {
        sim::run(prog, config::baseline(2), opts);
        FAIL() << "expected BudgetExceededError";
    } catch (const BudgetExceededError &e) {
        EXPECT_EQ(e.budget(), "wall");
    }
}

TEST(RunGuards, GenerousBudgetLeavesResultsBitIdentical)
{
    auto prog = program("li", 5);
    sim::SimResult clean =
        sim::run(prog, config::decoupled(2, 2), {});
    sim::RunOptions opts;
    opts.maxCycles = clean.cycles * 10 + 1000;
    opts.maxWallSeconds = 3600.0;
    sim::SimResult guarded =
        sim::run(prog, config::decoupled(2, 2), opts);
    EXPECT_EQ(guarded.cycles, clean.cycles);
    EXPECT_EQ(guarded.committed, clean.committed);
    EXPECT_DOUBLE_EQ(guarded.ipc, clean.ipc);
}

// ---------------------------------------------------------------------
// Crash black box
// ---------------------------------------------------------------------

TEST(Blackbox, WrittenOnBudgetExceeded)
{
    QuietGuard q;
    auto prog = program("li", 5);
    std::string path = tempPath("budget.blackbox.json");
    sim::RunOptions opts;
    opts.maxCycles = 2000;
    opts.blackboxPath = path;
    EXPECT_THROW(sim::run(prog, config::baseline(2), opts),
                 BudgetExceededError);

    ASSERT_TRUE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp")); // atomic publish
    std::string out = slurp(path);
    EXPECT_NE(out.find("\"schema\": \"ddsim-blackbox-v1\""),
              std::string::npos);
    EXPECT_NE(out.find("\"workload\": \"li\""), std::string::npos);
    EXPECT_NE(out.find("\"kind\": \"budget\""), std::string::npos);
    EXPECT_NE(out.find("\"last_commits\""), std::string::npos);
    EXPECT_NE(out.find("\"rob\""), std::string::npos);
    EXPECT_NE(out.find("\"stats\""), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Deadlock watchdog
// ---------------------------------------------------------------------

TEST(Deadlock, ThresholdIsPinned)
{
    // The watchdog threshold is part of the error contract: black-box
    // reports and bug reports compare stall lengths against it.
    EXPECT_EQ(cpu::kDeadlockCycles, 100000u);
}

TEST(Deadlock, DroppedWakeupTripsWatchdogAndBlackbox)
{
    QuietGuard q;
    robust::FaultInjector inj(1);
    inj.add({robust::FaultKind::DropWakeup, "", "", 100});
    robust::ScopedFaultInjection scope(inj);

    auto prog = program("li", 5);
    std::string path = tempPath("deadlock.blackbox.json");
    sim::RunOptions opts;
    opts.blackboxPath = path;
    try {
        sim::run(prog, config::decoupled(2, 2), opts);
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        // The payload describes the stall precisely.
        EXPECT_GT(e.info().sinceCommit, cpu::kDeadlockCycles);
        EXPECT_GE(e.info().robOccupancy, 1);
        EXPECT_FALSE(e.info().headDisasm.empty());
        bool sawHead = false;
        for (const auto &kv : e.context())
            sawHead |= kv.first == "head_disasm";
        EXPECT_TRUE(sawHead);
    }

    ASSERT_TRUE(fileExists(path));
    std::string out = slurp(path);
    EXPECT_NE(out.find("\"kind\": \"deadlock\""), std::string::npos);
    EXPECT_NE(out.find("\"last_commits\""), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Atomic observability writes
// ---------------------------------------------------------------------

TEST(AtomicWrite, CommitPublishesAndCleansUp)
{
    std::string path = tempPath("atomic.txt");
    {
        AtomicFile f(path);
        f.stream() << "payload\n";
        EXPECT_FALSE(fileExists(path)); // invisible until commit
        EXPECT_TRUE(fileExists(f.tempPath()));
        f.commit();
    }
    EXPECT_TRUE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
    EXPECT_EQ(slurp(path), "payload\n");
    std::remove(path.c_str());
}

TEST(AtomicWrite, AbandonLeavesNothing)
{
    std::string path = tempPath("abandoned.txt");
    {
        AtomicFile f(path);
        f.stream() << "half-written";
        // Destructor abandons: the error path needs no explicit call.
    }
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

TEST(AtomicWrite, UnwritableDirectoryIsIoError)
{
    QuietGuard q;
    EXPECT_THROW(AtomicFile("/no/such/dir/x.json"), IoError);
}

TEST(AtomicWrite, FailedRunLeavesNoTornOutputs)
{
    QuietGuard q;
    auto prog = program("li", 5);
    std::string trace = tempPath("torn.trace");
    std::string manifest = tempPath("torn.manifest.json");
    sim::RunOptions opts;
    opts.maxCycles = 2000;
    opts.tracePath = trace;
    opts.manifestPath = manifest;
    EXPECT_THROW(sim::run(prog, config::decoupled(2, 2), opts),
                 BudgetExceededError);
    // The aborted trace is abandoned, not published half-written, and
    // the manifest (written at run end) never appears at all.
    EXPECT_FALSE(fileExists(trace));
    EXPECT_FALSE(fileExists(trace + ".tmp"));
    EXPECT_FALSE(fileExists(manifest));
    EXPECT_FALSE(fileExists(manifest + ".tmp"));
}

// ---------------------------------------------------------------------
// TraceReader hardening: corrupted input is a typed error, never UB
// ---------------------------------------------------------------------

TEST(TraceCorruption, EveryTruncationIsDetected)
{
    QuietGuard q;
    std::string good = writeValidTrace("fuzz_trunc.trace");
    std::string bytes = slurp(good);
    ASSERT_GT(bytes.size(), 30u);
    EXPECT_EQ(readAllTrace(good), 4u); // sanity: the base decodes

    std::string path = tempPath("fuzz_trunc_cut.trace");
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        {
            std::ofstream os(path, std::ios::binary | std::ios::trunc);
            os.write(bytes.data(), static_cast<std::streamsize>(len));
        }
        // The intact header declares 4 records, so every shorter
        // prefix must fail to decode — as a typed error, not a crash.
        try {
            readAllTrace(path);
            ADD_FAILURE() << "truncation to " << len
                          << " bytes decoded successfully";
        } catch (const TraceCorruptError &e) {
            EXPECT_LE(e.byteOffset(), bytes.size());
        } catch (const IoError &) {
            // Zero-length opens can surface as I/O failures.
        }
    }
    std::remove(path.c_str());
    std::remove(good.c_str());
}

TEST(TraceCorruption, BitFlipsNeverEscapeTheTaxonomy)
{
    QuietGuard q;
    std::string good = writeValidTrace("fuzz_flip.trace");
    std::string bytes = slurp(good);
    std::string path = tempPath("fuzz_flip_bit.trace");
    std::size_t detected = 0, decoded = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[i] = static_cast<char>(
                mutated[i] ^ static_cast<char>(1u << bit));
            {
                std::ofstream os(path,
                                 std::ios::binary | std::ios::trunc);
                os.write(mutated.data(),
                         static_cast<std::streamsize>(mutated.size()));
            }
            // A flip may change payload values without breaking the
            // framing; what it must never do is crash or throw
            // anything outside the taxonomy.
            try {
                readAllTrace(path);
                ++decoded;
            } catch (const TraceCorruptError &) {
                ++detected;
            }
        }
    }
    EXPECT_GT(detected, 0u); // structural damage is caught...
    EXPECT_GT(decoded, 0u);  // ...and benign flips still decode
    std::remove(path.c_str());
    std::remove(good.c_str());
}

TEST(TraceCorruption, InjectedCorruptionCaughtByVerify)
{
    QuietGuard q;
    robust::FaultInjector inj(7);
    inj.add({robust::FaultKind::CorruptTrace, "", "", 1});
    robust::ScopedFaultInjection scope(inj);

    auto prog = program("li", 5);
    std::string trace = tempPath("injected.trace");
    sim::RunOptions opts;
    opts.tracePath = trace;
    opts.verifyTrace = true;
    try {
        sim::run(prog, config::decoupled(2, 2), opts);
        FAIL() << "expected TraceCorruptError";
    } catch (const TraceCorruptError &e) {
        EXPECT_EQ(e.path(), trace);
    }
    std::remove(trace.c_str());
}

// ---------------------------------------------------------------------
// Sweep failure isolation
// ---------------------------------------------------------------------

namespace {

sim::RetryPolicy
fastRetries(int maxAttempts = 3)
{
    sim::RetryPolicy p;
    p.maxAttempts = maxAttempts;
    p.backoffMs = 0;
    p.maxBackoffMs = 0;
    return p;
}

} // namespace

TEST(SweepIsolation, TransientFailureRecoversBitIdentical)
{
    auto li = programShared("li");
    sim::SimResult clean = sim::run(*li, config::decoupled(2, 2), {});

    QuietGuard q;
    robust::FaultInjector inj(3);
    inj.add({robust::FaultKind::JobTransient, "li", "", 1});
    robust::ScopedFaultInjection scope(inj);

    sim::SweepRunner runner(2);
    runner.setRetryPolicy(fastRetries());
    runner.submit(li, config::decoupled(2, 2));
    runner.submit(programShared("compress"), config::decoupled(2, 2));
    sim::SweepOutcome out = runner.collectOutcome();

    ASSERT_EQ(out.jobs.size(), 2u);
    EXPECT_FALSE(out.degraded);
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.numRecovered, 1u);
    EXPECT_EQ(out.jobs[0].status, sim::JobStatus::Recovered);
    EXPECT_EQ(out.jobs[0].attempts, 2);
    EXPECT_EQ(out.jobs[0].error.kind, "io");
    EXPECT_TRUE(out.jobs[0].error.transient);
    EXPECT_EQ(out.jobs[1].status, sim::JobStatus::Ok);
    // Determinism: the retried run is the run.
    EXPECT_EQ(out.results[0].cycles, clean.cycles);
    EXPECT_EQ(out.results[0].committed, clean.committed);
    EXPECT_DOUBLE_EQ(out.results[0].ipc, clean.ipc);
}

TEST(SweepIsolation, PersistentFailureIsQuarantined)
{
    QuietGuard q;
    robust::FaultInjector inj(4);
    inj.add({robust::FaultKind::JobPersistent, "li", "", 1});
    robust::ScopedFaultInjection scope(inj);

    sim::SweepRunner runner(2);
    runner.setRetryPolicy(fastRetries());
    runner.submit(programShared("li"), config::decoupled(2, 2));
    runner.submit(programShared("compress"), config::decoupled(2, 2));
    sim::SweepOutcome out = runner.collectOutcome();

    ASSERT_EQ(out.jobs.size(), 2u);
    EXPECT_TRUE(out.degraded);
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.numQuarantined, 1u);
    EXPECT_EQ(out.jobs[0].status, sim::JobStatus::Quarantined);
    EXPECT_EQ(out.jobs[0].attempts, 1); // non-transient: no retry
    EXPECT_EQ(out.jobs[0].error.kind, "program");
    EXPECT_EQ(out.results[0].cycles, 0u); // placeholder slot
    // The healthy neighbour is untouched.
    EXPECT_EQ(out.jobs[1].status, sim::JobStatus::Ok);
    EXPECT_GT(out.results[1].cycles, 0u);
}

TEST(SweepIsolation, RetryPolicyBoundsAttempts)
{
    QuietGuard q;
    robust::FaultInjector inj(5);
    inj.add({robust::FaultKind::JobTransient, "li", "", 10});
    robust::ScopedFaultInjection scope(inj);

    sim::SweepRunner runner(1);
    runner.setRetryPolicy(fastRetries(2));
    runner.submit(programShared("li"), config::decoupled(2, 2));
    sim::SweepOutcome out = runner.collectOutcome();

    ASSERT_EQ(out.jobs.size(), 1u);
    EXPECT_EQ(out.jobs[0].status, sim::JobStatus::Quarantined);
    EXPECT_EQ(out.jobs[0].attempts, 2);
    EXPECT_TRUE(out.jobs[0].error.transient);
}

// ---------------------------------------------------------------------
// Acceptance: a 12-workload sweep with one injected failure per class
// completes, quarantines exactly the injected points, and emits a
// degraded manifest the stdlib validator accepts.
// ---------------------------------------------------------------------

TEST(SweepIsolation, TwelveWorkloadDegradedSweepValidates)
{
    QuietGuard q;
    robust::FaultInjector inj(11);
    inj.add({robust::FaultKind::JobTransient, "li", "", 1});
    inj.add({robust::FaultKind::JobPersistent, "gcc", "", 1});
    inj.add({robust::FaultKind::AllocFail, "compress", "", 1});
    inj.add({robust::FaultKind::DropWakeup, "go", "", 100});
    inj.add({robust::FaultKind::CorruptTrace, "m88ksim", "", 1});
    robust::ScopedFaultInjection scope(inj);

    const std::vector<workloads::WorkloadInfo> &all = workloads::all();
    ASSERT_EQ(all.size(), 12u);

    std::string trace = tempPath("accept_m88ksim.trace");
    sim::SweepRunner runner;
    runner.setRetryPolicy(fastRetries());
    std::vector<std::string> names;
    for (const workloads::WorkloadInfo &w : all) {
        names.emplace_back(w.name);
        sim::SweepJob job;
        job.program = programShared(w.name, 3);
        job.cfg = config::decoupled(2, 2);
        job.opts.captureManifest = true;
        if (names.back() == "m88ksim") {
            job.opts.tracePath = trace;
            job.opts.verifyTrace = true;
        }
        runner.submit(std::move(job));
    }
    sim::SweepOutcome out = runner.collectOutcome();

    ASSERT_EQ(out.jobs.size(), 12u);
    EXPECT_TRUE(out.degraded);
    EXPECT_EQ(out.numQuarantined, 4u);
    EXPECT_EQ(out.numRecovered, 1u);
    for (std::size_t i = 0; i < out.jobs.size(); ++i) {
        const std::string &name = names[i];
        const sim::JobOutcome &jo = out.jobs[i];
        if (name == "li") {
            EXPECT_EQ(jo.status, sim::JobStatus::Recovered) << name;
            EXPECT_EQ(jo.error.kind, "io") << name;
        } else if (name == "gcc") {
            EXPECT_EQ(jo.status, sim::JobStatus::Quarantined) << name;
            EXPECT_EQ(jo.error.kind, "program") << name;
        } else if (name == "compress") {
            EXPECT_EQ(jo.status, sim::JobStatus::Quarantined) << name;
            EXPECT_EQ(jo.error.kind, "alloc") << name;
            EXPECT_EQ(jo.attempts, 3) << name; // transient: retried
        } else if (name == "go") {
            EXPECT_EQ(jo.status, sim::JobStatus::Quarantined) << name;
            EXPECT_EQ(jo.error.kind, "deadlock") << name;
        } else if (name == "m88ksim") {
            EXPECT_EQ(jo.status, sim::JobStatus::Quarantined) << name;
            EXPECT_EQ(jo.error.kind, "trace-corrupt") << name;
        } else {
            EXPECT_EQ(jo.status, sim::JobStatus::Ok) << name;
            EXPECT_GT(out.results[i].cycles, 0u) << name;
        }
    }

    std::string manifest = tempPath("accept_degraded.json");
    sim::writeSweepManifestFile("robust acceptance", out, manifest);
    ASSERT_TRUE(fileExists(manifest));
    EXPECT_FALSE(fileExists(manifest + ".tmp"));
    std::string doc = slurp(manifest);
    EXPECT_NE(doc.find("\"degraded\": true"), std::string::npos);
    EXPECT_NE(doc.find("\"status\": \"quarantined\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"status\": \"recovered\""), std::string::npos);

    if (std::system("python3 -c \"\" >/dev/null 2>&1") != 0) {
        std::remove(trace.c_str());
        GTEST_SKIP() << "python3 unavailable; validator not run";
    }
    std::string cmd = std::string("python3 \"") + DDSIM_SOURCE_DIR +
                      "/tools/validate_manifest.py\" \"" + manifest +
                      "\" >/dev/null";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
    std::remove(manifest.c_str());
    std::remove(trace.c_str());
}

// ---------------------------------------------------------------------
// Injection disabled: the supervisor machinery is invisible
// ---------------------------------------------------------------------

TEST(FaultInjection, InactiveByDefaultAndScoped)
{
    EXPECT_EQ(robust::FaultInjector::active(), nullptr);
    {
        robust::FaultInjector inj(1);
        robust::ScopedFaultInjection scope(inj);
        EXPECT_EQ(robust::FaultInjector::active(), &inj);
    }
    EXPECT_EQ(robust::FaultInjector::active(), nullptr);
}

TEST(FaultInjection, DisabledInjectionLeavesTimingBitIdentical)
{
    // The differential suite pins the full 12x5 grid; here a spot
    // check shows the probe sites themselves are inert: a run under
    // an injector with no matching spec equals a run with none.
    auto prog = program("li", 5);
    sim::SimResult clean = sim::run(prog, config::decoupled(2, 2), {});
    robust::FaultInjector inj(9);
    inj.add({robust::FaultKind::JobPersistent, "no-such-workload", "",
             1});
    robust::ScopedFaultInjection scope(inj);
    sim::SimResult probed = sim::run(prog, config::decoupled(2, 2), {});
    EXPECT_EQ(probed.cycles, clean.cycles);
    EXPECT_EQ(probed.committed, clean.committed);
}
