/**
 * @file
 * Workload generator tests: every program builds, runs to completion,
 * is deterministic, and lands inside the characteristic bands the
 * paper reports for the corresponding SPEC95 benchmark (Section 2.2).
 */

#include <gtest/gtest.h>

#include "stats/group.hh"
#include "util/log.hh"
#include "vm/executor.hh"
#include "vm/trace.hh"
#include "workloads/common.hh"

using namespace ddsim;
using namespace ddsim::workloads;

namespace {

struct Profile
{
    std::uint64_t insts = 0;
    double loadFrac = 0;
    double storeFrac = 0;
    double localRefFrac = 0;
    double localLoadFrac = 0;
    double localStoreFrac = 0;
    double dynFrameWords = 0;
    std::uint64_t calls = 0;
    std::vector<Word> printed;
};

Profile
profile(const std::string &name, std::uint64_t scale = 10)
{
    WorkloadParams p;
    p.scale = scale;
    prog::Program program = build(name, p);
    vm::Executor exec(program);
    stats::Group root(nullptr, "");
    vm::StreamStats ss(&root);
    std::uint64_t guard = 50'000'000;
    while (!exec.halted() && guard--)
        ss.record(exec.step());
    EXPECT_TRUE(exec.halted()) << name << " did not halt";
    Profile out;
    out.insts = ss.instructions.value();
    out.loadFrac = ss.loadFrac();
    out.storeFrac = ss.storeFrac();
    out.localRefFrac = ss.localRefFrac();
    out.localLoadFrac = ss.localLoadFrac();
    out.localStoreFrac = ss.localStoreFrac();
    out.dynFrameWords = ss.frameWords.mean();
    out.calls = ss.calls.value();
    out.printed = exec.printed();
    return out;
}

} // namespace

TEST(Workloads, RegistryHasTwelveEntries)
{
    EXPECT_EQ(all().size(), 12u);
    EXPECT_EQ(integerNames().size(), 8u);
    EXPECT_EQ(fpNames().size(), 4u);
}

TEST(Workloads, LookupByEitherName)
{
    EXPECT_NE(find("li"), nullptr);
    EXPECT_NE(find("130.li"), nullptr);
    EXPECT_EQ(find("li"), find("130.li"));
    EXPECT_EQ(find("doom"), nullptr);
    setQuiet(true);
    EXPECT_THROW(build("doom"), FatalError);
}

class EveryWorkload : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EveryWorkload, RunsToHaltAndPrintsChecksum)
{
    Profile p = profile(GetParam());
    EXPECT_GT(p.insts, 1000u);
    ASSERT_EQ(p.printed.size(), 1u)
        << GetParam() << " must print exactly one checksum";
}

TEST_P(EveryWorkload, DeterministicAcrossRuns)
{
    Profile a = profile(GetParam());
    Profile b = profile(GetParam());
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.printed, b.printed);
}

TEST_P(EveryWorkload, SeedVariesStructureNotCharacter)
{
    // Different seeds produce different programs (the generators use
    // the seed for structural randomness) whose profile stays in the
    // same regime.
    workloads::WorkloadParams p1, p2;
    p1.scale = p2.scale = 10;
    p1.seed = 0x1111;
    p2.seed = 0x2222;
    prog::Program a = workloads::build(GetParam(), p1);
    prog::Program b = workloads::build(GetParam(), p2);

    auto profileOf = [](prog::Program &prog) {
        vm::Executor exec(prog);
        stats::Group root(nullptr, "");
        vm::StreamStats ss(&root);
        while (!exec.halted())
            ss.record(exec.step());
        return std::pair<double, std::uint64_t>(
            ss.localRefFrac(), ss.instructions.value());
    };
    auto [fracA, instsA] = profileOf(a);
    auto [fracB, instsB] = profileOf(b);
    EXPECT_NEAR(fracA, fracB, 0.10) << GetParam();
    double ratio = static_cast<double>(instsA) /
                   static_cast<double>(instsB);
    EXPECT_GT(ratio, 0.7) << GetParam();
    EXPECT_LT(ratio, 1.4) << GetParam();
}

TEST_P(EveryWorkload, ScaleIncreasesWork)
{
    Profile small = profile(GetParam(), 5);
    Profile large = profile(GetParam(), 20);
    EXPECT_GT(large.insts, small.insts);
}

TEST_P(EveryWorkload, HasBothLocalAndNonLocalRefs)
{
    Profile p = profile(GetParam());
    EXPECT_GT(p.localRefFrac, 0.0) << GetParam();
    EXPECT_LT(p.localRefFrac, 0.95) << GetParam();
    EXPECT_GT(p.loadFrac, 0.03) << GetParam();
    EXPECT_GT(p.storeFrac, 0.02) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryWorkload,
    ::testing::Values("go", "m88ksim", "gcc", "compress", "li",
                      "ijpeg", "perl", "vortex", "tomcatv", "swim",
                      "su2cor", "mgrid"));

// ---- Paper-characteristic bands (Fig. 2 / Section 2.2) ----

TEST(WorkloadBands, VortexIsTheMostLocal)
{
    Profile vortex = profile("vortex", 40);
    EXPECT_GT(vortex.localRefFrac, 0.60);
    EXPECT_GT(vortex.localStoreFrac, 0.70); // paper: ~80% of stores
    for (const char *name : {"go", "gcc", "compress", "li", "perl"}) {
        Profile other = profile(name);
        EXPECT_GT(vortex.localRefFrac, other.localRefFrac)
            << "vortex should out-local " << name;
    }
}

TEST(WorkloadBands, CompressIsTheLeastLocalInteger)
{
    Profile compress = profile("compress");
    EXPECT_LT(compress.localRefFrac, 0.20); // paper: ~10%
    for (const char *name : {"go", "gcc", "li", "perl", "vortex"}) {
        Profile other = profile(name);
        EXPECT_LT(compress.localRefFrac, other.localRefFrac)
            << "compress should under-local " << name;
    }
}

TEST(WorkloadBands, FpProgramsAreLessLocalThanIntegerAverage)
{
    double intSum = 0, fpSum = 0;
    for (const auto &name : integerNames())
        intSum += profile(name).localRefFrac;
    for (const auto &name : fpNames())
        fpSum += profile(name).localRefFrac;
    double intAvg = intSum / 8.0;
    double fpAvg = fpSum / 4.0;
    EXPECT_LT(fpAvg, intAvg);
    EXPECT_LT(fpAvg, 0.25);
}

TEST(WorkloadBands, AverageLocalFractionsNearPaper)
{
    // Paper: on average ~30% of loads and ~48% of stores are local,
    // ~36% of all references. Allow generous bands.
    double ldSum = 0, stSum = 0, refSum = 0;
    for (const auto &w : all()) {
        Profile p = profile(w.name);
        ldSum += p.localLoadFrac;
        stSum += p.localStoreFrac;
        refSum += p.localRefFrac;
    }
    EXPECT_NEAR(ldSum / 12.0, 0.30, 0.12);
    EXPECT_NEAR(stSum / 12.0, 0.48, 0.17);
    EXPECT_NEAR(refSum / 12.0, 0.36, 0.12);
}

TEST(WorkloadBands, FramesAreSmall)
{
    // Paper: dynamic frames average a few words; static frames ~7
    // words; most frames well under 25 words.
    for (const auto &w : all()) {
        Profile p = profile(w.name);
        if (p.calls == 0)
            continue;
        EXPECT_LT(p.dynFrameWords, 25.0) << w.name;
        EXPECT_GE(p.dynFrameWords, 2.0) << w.name;
    }
}

TEST(WorkloadBands, LiIsCallDense)
{
    Profile li = profile("li");
    Profile compress = profile("compress");
    double liCallRate =
        static_cast<double>(li.calls) / static_cast<double>(li.insts);
    double compressCallRate = static_cast<double>(compress.calls) /
                              static_cast<double>(compress.insts);
    EXPECT_GT(liCallRate, 20 * compressCallRate);
}

// ---- Per-program calibration bands (DESIGN.md section 6) ----

struct Band
{
    const char *name;
    double locRefLo;
    double locRefHi;
};

class CalibrationBand : public ::testing::TestWithParam<Band>
{
};

TEST_P(CalibrationBand, LocalFractionWithinTarget)
{
    Band band = GetParam();
    Profile p = profile(band.name, 15);
    EXPECT_GE(p.localRefFrac, band.locRefLo) << band.name;
    EXPECT_LE(p.localRefFrac, band.locRefHi) << band.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, CalibrationBand,
    ::testing::Values(Band{"go", 0.30, 0.58},
                      Band{"m88ksim", 0.15, 0.42},
                      Band{"gcc", 0.40, 0.70},
                      Band{"compress", 0.03, 0.16},
                      Band{"li", 0.42, 0.70},
                      Band{"ijpeg", 0.18, 0.45},
                      Band{"perl", 0.40, 0.68},
                      Band{"vortex", 0.60, 0.88},
                      Band{"tomcatv", 0.04, 0.28},
                      Band{"swim", 0.02, 0.20},
                      Band{"su2cor", 0.06, 0.32},
                      Band{"mgrid", 0.005, 0.14}));

TEST(WorkloadBands, DefaultScalesGiveComparableLengths)
{
    for (const auto &w : all()) {
        Profile p = profile(w.name, w.defaultScale);
        EXPECT_GT(p.insts, 120'000u) << w.name;
        EXPECT_LT(p.insts, 900'000u) << w.name;
    }
}
