/**
 * @file
 * PortScheduler / access-combining tests: port exhaustion, group
 * formation rules (same line, same type, consecutive-window, degree
 * cap), and per-cycle reset.
 */

#include <gtest/gtest.h>

#include "core/combining.hh"
#include "util/log.hh"

using namespace ddsim;
using namespace ddsim::core;

TEST(PortScheduler, GrantsUpToPortCount)
{
    PortScheduler ps(2, 1, 32);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x000, AccessKind::Load, 0).granted);
    EXPECT_TRUE(ps.request(0x100, AccessKind::Load, 1).granted);
    EXPECT_FALSE(ps.request(0x200, AccessKind::Load, 2).granted);
    EXPECT_EQ(ps.portsInUse(), 2);
}

TEST(PortScheduler, NewCycleReleasesPorts)
{
    PortScheduler ps(1, 1, 32);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x000, AccessKind::Load, 0).granted);
    EXPECT_FALSE(ps.request(0x100, AccessKind::Load, 1).granted);
    ps.newCycle(1);
    EXPECT_TRUE(ps.request(0x100, AccessKind::Load, 1).granted);
}

TEST(PortScheduler, NewCycleSameCycleIsIdempotent)
{
    PortScheduler ps(1, 1, 32);
    ps.newCycle(5);
    EXPECT_TRUE(ps.request(0x000, AccessKind::Load, 0).granted);
    ps.newCycle(5); // must not release the port
    EXPECT_FALSE(ps.request(0x100, AccessKind::Load, 1).granted);
}

TEST(Combining, DegreeOneNeverCombines)
{
    PortScheduler ps(1, 1, 32);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Load, 0).granted);
    auto g = ps.request(0x04, AccessKind::Load, 1); // same line
    EXPECT_FALSE(g.granted);
}

TEST(Combining, SameLineLoadsCombine)
{
    PortScheduler ps(1, 2, 32);
    ps.newCycle(0);
    auto a = ps.request(0x00, AccessKind::Load, 0);
    EXPECT_TRUE(a.granted);
    EXPECT_FALSE(a.combined);
    auto b = ps.request(0x1c, AccessKind::Load, 1); // same 32B line
    EXPECT_TRUE(b.granted);
    EXPECT_TRUE(b.combined);
    EXPECT_EQ(b.groupId, a.groupId);
    EXPECT_EQ(ps.portsInUse(), 1);
}

TEST(Combining, DifferentLinesDoNotCombine)
{
    PortScheduler ps(1, 2, 32);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Load, 0).granted);
    auto b = ps.request(0x20, AccessKind::Load, 1); // next line
    EXPECT_FALSE(b.granted);
}

TEST(Combining, LoadsAndStoresDoNotMix)
{
    PortScheduler ps(1, 2, 32);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Load, 0).granted);
    auto st = ps.request(0x04, AccessKind::Store, 1); // store to the same line
    EXPECT_FALSE(st.granted);
}

TEST(Combining, DegreeCapsGroupSize)
{
    PortScheduler ps(1, 2, 32);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Load, 0).granted);
    EXPECT_TRUE(ps.request(0x04, AccessKind::Load, 1).combined);
    // Third same-line access exceeds 2-way combining.
    EXPECT_FALSE(ps.request(0x08, AccessKind::Load, 2).granted);
}

TEST(Combining, ConsecutiveWindowEnforced)
{
    PortScheduler ps(2, 2, 32);
    ps.newCycle(0);
    auto a = ps.request(0x00, AccessKind::Load, 0);
    EXPECT_TRUE(a.granted);
    // Queue position 5 is outside the 2-entry window of the leader.
    auto far = ps.request(0x04, AccessKind::Load, 5);
    EXPECT_TRUE(far.granted);
    EXPECT_FALSE(far.combined); // takes its own port instead
    EXPECT_EQ(ps.portsInUse(), 2);
}

TEST(Combining, FourWayCombining)
{
    PortScheduler ps(1, 4, 32);
    ps.newCycle(0);
    EXPECT_FALSE(ps.request(0x00, AccessKind::Load, 0).combined);
    EXPECT_TRUE(ps.request(0x04, AccessKind::Load, 1).combined);
    EXPECT_TRUE(ps.request(0x08, AccessKind::Load, 2).combined);
    EXPECT_TRUE(ps.request(0x0c, AccessKind::Load, 3).combined);
    EXPECT_FALSE(ps.request(0x10, AccessKind::Load, 4).granted); // 5th
    EXPECT_EQ(ps.portsInUse(), 1);
}

TEST(Combining, GroupCompletionPropagates)
{
    PortScheduler ps(1, 2, 32);
    ps.newCycle(0);
    auto a = ps.request(0x00, AccessKind::Load, 0);
    ps.setGroupCompletion(a.groupId, 42);
    auto b = ps.request(0x04, AccessKind::Load, 1);
    EXPECT_TRUE(b.combined);
    EXPECT_EQ(ps.groupCompletion(b.groupId), 42u);
}

TEST(Combining, StoresCombineWithStores)
{
    PortScheduler ps(1, 2, 32);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x40, AccessKind::Store, 0).granted);
    auto b = ps.request(0x44, AccessKind::Store, 1);
    EXPECT_TRUE(b.combined);
}

TEST(Combining, ForwardsNeverShareGroupsWithCacheLoads)
{
    // A forwarded load finishes in 1 cycle; a cache load in 2+. They
    // must not share a combining group, or one of them would get the
    // wrong completion time.
    PortScheduler ps(2, 2, 32);
    ps.newCycle(0);
    auto ld = ps.request(0x00, AccessKind::Load, 0);
    EXPECT_TRUE(ld.granted);
    auto fwd = ps.request(0x04, AccessKind::Forward, 1);
    EXPECT_TRUE(fwd.granted);
    EXPECT_FALSE(fwd.combined);
    EXPECT_EQ(ps.portsInUse(), 2);
}

TEST(Combining, ForwardsCombineAmongThemselves)
{
    PortScheduler ps(1, 2, 32);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Forward, 0).granted);
    auto b = ps.request(0x04, AccessKind::Forward, 1);
    EXPECT_TRUE(b.combined);
}

TEST(PortScheduler, BadConfigRejected)
{
    setQuiet(true);
    EXPECT_THROW(PortScheduler(0, 1, 32), FatalError);
    EXPECT_THROW(PortScheduler(1, 0, 32), FatalError);
    EXPECT_THROW(PortScheduler(1, 1, 33), FatalError);
    EXPECT_THROW(PortScheduler(1, 1, 32, 3), FatalError);
    EXPECT_THROW(PortScheduler(1, 1, 32, -1), FatalError);
}

// ---- Interleaved banks (the realistic multi-porting of Section 1) --

TEST(Banked, SameBankAccessesConflict)
{
    // 2 ports, 2 banks: lines 0 and 2 share bank 0.
    PortScheduler ps(2, 1, 32, 2);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Load, 0).granted);
    auto g = ps.request(0x40, AccessKind::Load, 1); // line 2, bank 0
    EXPECT_FALSE(g.granted);
    EXPECT_TRUE(g.bankConflict);
}

TEST(Banked, DifferentBanksProceed)
{
    PortScheduler ps(2, 1, 32, 2);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Load, 0).granted);
    auto g = ps.request(0x20, AccessKind::Load, 1); // line 1, bank 1
    EXPECT_TRUE(g.granted);
    EXPECT_FALSE(g.bankConflict);
}

TEST(Banked, BanksFreeEachCycle)
{
    PortScheduler ps(1, 1, 32, 2);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Load, 0).granted);
    ps.newCycle(1);
    EXPECT_TRUE(ps.request(0x40, AccessKind::Load, 0).granted);
}

TEST(Banked, PortLimitStillAppliesAcrossBanks)
{
    // 1 port, 4 banks: the second access is port-limited, not
    // bank-limited.
    PortScheduler ps(1, 1, 32, 4);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Load, 0).granted);
    auto g = ps.request(0x20, AccessKind::Load, 1);
    EXPECT_FALSE(g.granted);
    EXPECT_FALSE(g.bankConflict);
}

TEST(Banked, CombinedMembersShareTheLeaderBank)
{
    // A same-line join consumes no extra bank.
    PortScheduler ps(2, 2, 32, 2);
    ps.newCycle(0);
    EXPECT_TRUE(ps.request(0x00, AccessKind::Load, 0).granted);
    auto joined = ps.request(0x04, AccessKind::Load, 1);
    EXPECT_TRUE(joined.combined);
    // The other bank is still available.
    EXPECT_TRUE(ps.request(0x20, AccessKind::Load, 2).granted);
}

TEST(Banked, IdealModeIgnoresBanks)
{
    PortScheduler ps(4, 1, 32, 0);
    ps.newCycle(0);
    // Four same-bank lines all proceed under ideal porting.
    EXPECT_TRUE(ps.request(0x000, AccessKind::Load, 0).granted);
    EXPECT_TRUE(ps.request(0x040, AccessKind::Load, 1).granted);
    EXPECT_TRUE(ps.request(0x080, AccessKind::Load, 2).granted);
    EXPECT_TRUE(ps.request(0x0c0, AccessKind::Load, 3).granted);
}
