/**
 * @file
 * Pipeline tests on hand-analysable kernels: completion/commit
 * correctness, IPC behaviour of dependency chains vs independent
 * streams, width limits, FU contention, memory latency visibility,
 * store forwarding, and dispatch-stall accounting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "config/presets.hh"
#include "cpu/pipeline.hh"
#include "prog/builder.hh"
#include "stats/group.hh"
#include "vm/executor.hh"

using namespace ddsim;
using namespace ddsim::prog;
namespace reg = ddsim::isa::reg;

namespace {

struct Run
{
    std::uint64_t cycles;
    std::uint64_t committed;
    double ipc;
};

Run
simulate(Program &p, const config::MachineConfig &cfg)
{
    stats::Group root(nullptr, "");
    vm::Executor exec(p);
    cpu::Pipeline pipe(&root, cfg, exec);
    pipe.run();
    return {pipe.numCycles.value(), pipe.committedInsts.value(),
            pipe.ipc()};
}

/** N independent adds then halt. */
Program
independentAdds(int n)
{
    ProgramBuilder b("indep");
    for (int i = 0; i < n; ++i)
        b.addi(static_cast<RegId>(reg::t0 + (i % 8)), reg::zero, i);
    b.halt();
    return b.finish();
}

/** N dependent adds (a chain) then halt. */
Program
dependentChain(int n)
{
    ProgramBuilder b("chain");
    b.li(reg::t0, 0);
    for (int i = 0; i < n; ++i)
        b.addi(reg::t0, reg::t0, 1);
    b.halt();
    return b.finish();
}

} // namespace

TEST(Pipeline, CommitsEveryInstructionExactlyOnce)
{
    Program p = independentAdds(100);
    auto r = simulate(p, config::baseline(2));
    EXPECT_EQ(r.committed, 101u); // 100 adds + halt
}

TEST(Pipeline, DependentChainRunsNearIpcOne)
{
    // A 1-latency dependency chain issues one op per cycle.
    Program p = dependentChain(400);
    auto r = simulate(p, config::baseline(2));
    EXPECT_GT(r.ipc, 0.85);
    EXPECT_LT(r.ipc, 1.15);
}

TEST(Pipeline, IndependentOpsExploitWidth)
{
    Program p = independentAdds(800);
    auto r = simulate(p, config::baseline(4));
    // 16-wide machine, 16 int ALUs: should sustain far more than 4.
    EXPECT_GT(r.ipc, 8.0);
}

TEST(Pipeline, NarrowMachineCapsIpc)
{
    Program p = independentAdds(800);
    config::MachineConfig cfg = config::baseline(2);
    cfg.fetchWidth = cfg.issueWidth = cfg.commitWidth = 2;
    auto r = simulate(p, cfg);
    EXPECT_LE(r.ipc, 2.05);
    EXPECT_GT(r.ipc, 1.5);
}

TEST(Pipeline, MulDivLatencyVisible)
{
    // A chain of dependent multiplies: ~5 cycles each.
    ProgramBuilder b("muls");
    b.li(reg::t0, 1);
    for (int i = 0; i < 100; ++i)
        b.mul(reg::t0, reg::t0, reg::t0);
    b.halt();
    Program p = b.finish();
    auto r = simulate(p, config::baseline(2));
    EXPECT_GT(r.cycles, 480u);
}

TEST(Pipeline, UnpipelinedDivSerializes)
{
    // Independent divides, but only 4 unpipelined div units:
    // 100 divides * 34 cycles / 4 units ~ 850 cycles minimum.
    ProgramBuilder b("divs");
    b.li(reg::t0, 100);
    b.li(reg::t1, 7);
    for (int i = 0; i < 100; ++i)
        b.div(static_cast<RegId>(reg::t2 + (i % 4)), reg::t0, reg::t1);
    b.halt();
    Program p = b.finish();
    auto r = simulate(p, config::baseline(2));
    EXPECT_GT(r.cycles, 800u);
}

TEST(Pipeline, LoadLatencyVisibleInChain)
{
    // Pointer-chase style: each load feeds the next address.
    ProgramBuilder b("chase");
    Addr table = b.dataWords(64);
    b.la(reg::t0, table);
    for (int i = 0; i < 50; ++i) {
        b.lw(reg::t1, 0, reg::t0);      // always loads 0
        b.add(reg::t0, reg::t0, reg::t1);
        b.addi(reg::t0, reg::t0, 4);
        b.addi(reg::t0, reg::t0, -4);
    }
    b.halt();
    Program p = b.finish();
    auto r = simulate(p, config::baseline(4));
    // Each iteration: >= 1 (agen) + 2 (L1 hit) + deps ~ 5+ cycles.
    EXPECT_GT(r.cycles, 250u);
}

TEST(Pipeline, StoreLoadForwardingWorks)
{
    ProgramBuilder b("fwd");
    b.addi(reg::sp, reg::sp, -16);
    b.li(reg::t0, 42);
    for (int i = 0; i < 50; ++i) {
        b.sw(reg::t0, 0, reg::sp);
        b.lw(reg::t1, 0, reg::sp);
    }
    b.halt();
    Program p = b.finish();

    stats::Group root(nullptr, "");
    vm::Executor exec(p);
    cpu::Pipeline pipe(&root, config::baseline(2), exec);
    pipe.run();
    EXPECT_GT(pipe.lsq().loadsForwarded.value(), 30u);
}

TEST(Pipeline, RobFullStallsAccounted)
{
    // A long-latency head (many dependent divides) with a large body
    // of independent work behind it fills the ROB.
    ProgramBuilder b("robfull");
    b.li(reg::t0, 9);
    for (int i = 0; i < 8; ++i)
        b.div(reg::t0, reg::t0, reg::t0);
    for (int i = 0; i < 400; ++i)
        b.addi(static_cast<RegId>(reg::t1 + (i % 4)), reg::zero, 1);
    b.halt();
    Program p = b.finish();

    stats::Group root(nullptr, "");
    vm::Executor exec(p);
    config::MachineConfig cfg = config::baseline(2);
    cfg.robSize = 32;
    cpu::Pipeline pipe(&root, cfg, exec);
    pipe.run();
    EXPECT_GT(pipe.robFullStalls.value(), 0u);
}

TEST(Pipeline, PortsLimitMemoryThroughput)
{
    // A burst of independent loads: ports bound the rate.
    ProgramBuilder b("ports");
    Addr buf = b.dataWords(512);
    b.la(reg::t0, buf);
    for (int i = 0; i < 256; ++i)
        b.lw(static_cast<RegId>(reg::t1 + (i % 4)), (i % 64) * 4,
             reg::t0);
    b.halt();
    Program p = b.finish();

    auto one = simulate(p, config::baseline(1));
    auto four = simulate(p, config::baseline(4));
    // With 1 port, >= 256 cycles just for cache accesses.
    EXPECT_GT(one.cycles, 250u);
    EXPECT_LT(four.cycles * 2, one.cycles);
}

TEST(Pipeline, CommitWidthBoundsIpc)
{
    Program p = independentAdds(1000);
    config::MachineConfig cfg = config::baseline(4);
    cfg.commitWidth = 4;
    auto r = simulate(p, cfg);
    EXPECT_LE(r.ipc, 4.05);
}

TEST(Pipeline, BranchesExecuteWithPerfectPrediction)
{
    // A tight loop: with a perfect front end the branch costs only
    // its ALU slot.
    ProgramBuilder b("loop");
    b.li(reg::t0, 200);
    Label top = b.here();
    b.addi(reg::t0, reg::t0, -1);
    b.bgtz(reg::t0, top);
    b.halt();
    Program p = b.finish();
    auto r = simulate(p, config::baseline(2));
    EXPECT_EQ(r.committed, 402u);
    // The chain on t0 limits to ~1 iteration (2 insts) per cycle.
    EXPECT_GT(r.ipc, 1.4);
}

TEST(Pipeline, FunctionCallsRunCorrectly)
{
    ProgramBuilder b("calls");
    Label main = b.newLabel("main");
    Label fn = b.newLabel("fn");
    b.bind(main);
    b.li(reg::s0, 20);
    b.li(reg::s1, 0);
    Label loop = b.here();
    b.move(reg::a0, reg::s0);
    b.jal(fn);
    b.add(reg::s1, reg::s1, reg::v0);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, loop);
    b.print(reg::s1);
    b.halt();
    b.bind(fn);
    FrameSpec f;
    f.localWords = 2;
    f.savedRegs = {reg::s0};
    b.prologue(f);
    b.storeLocal(reg::a0, 0);
    b.loadLocal(reg::v0, 0);
    b.sll(reg::v0, reg::v0, 1);
    b.epilogue(f);
    Program p = b.finish();
    p.setEntry(p.symbol("main"));

    stats::Group root(nullptr, "");
    vm::Executor exec(p);
    cpu::Pipeline pipe(&root, config::baseline(2), exec);
    pipe.run();
    // sum of 2*k for k=1..20 = 420.
    ASSERT_EQ(exec.printed().size(), 1u);
    EXPECT_EQ(exec.printed()[0], 420u);
    EXPECT_TRUE(pipe.done());
}

TEST(Pipeline, MaxInstsLimitsFetch)
{
    Program p = dependentChain(1000);
    stats::Group root(nullptr, "");
    vm::Executor exec(p);
    cpu::Pipeline pipe(&root, config::baseline(2), exec);
    pipe.run(100);
    EXPECT_EQ(pipe.committedInsts.value(), 100u);
    EXPECT_TRUE(pipe.done());
}

TEST(Pipeline, TraceListsEveryCommittedInstruction)
{
    Program p = dependentChain(20);
    stats::Group root(nullptr, "");
    vm::Executor exec(p);
    cpu::Pipeline pipe(&root, config::baseline(2), exec);
    std::ostringstream trace;
    pipe.setTrace(&trace);
    pipe.run();
    std::string out = trace.str();
    // One line per committed instruction.
    std::size_t lines = 0;
    for (char c : out) {
        if (c == '\n')
            ++lines;
    }
    EXPECT_EQ(lines, pipe.committedInsts.value());
    EXPECT_NE(out.find("addi t0, t0, 1"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
}

TEST(Pipeline, TraceShowsQueuePlacement)
{
    ProgramBuilder b("t");
    b.sw(reg::t0, -4, reg::sp, true);
    Addr g = b.dataWord(0);
    b.la(reg::t1, g);
    b.lw(reg::t2, 0, reg::t1);
    b.halt();
    Program p = b.finish();

    stats::Group root(nullptr, "");
    vm::Executor exec(p);
    cpu::Pipeline pipe(&root, config::decoupled(2, 2), exec);
    std::ostringstream trace;
    pipe.setTrace(&trace);
    pipe.run();
    std::string out = trace.str();
    EXPECT_NE(out.find("[lvaq]"), std::string::npos);
    EXPECT_NE(out.find("[lsq]"), std::string::npos);
}

TEST(Pipeline, LvaqFullStallsAccounted)
{
    // A burst of local stores whose data depends on a long divide
    // chain: the LVAQ fills while the divides crawl.
    ProgramBuilder b("lvaqfull");
    b.addi(reg::sp, reg::sp, -128);
    b.li(reg::t0, 9);
    for (int i = 0; i < 6; ++i)
        b.div(reg::t0, reg::t0, reg::t0);
    for (int i = 0; i < 60; ++i)
        b.sw(reg::t0, (i % 32) * 4, reg::sp, true);
    b.halt();
    Program p = b.finish();

    stats::Group root(nullptr, "");
    vm::Executor exec(p);
    config::MachineConfig cfg = config::decoupled(2, 2);
    cfg.lvaqSize = 8;
    cfg.robSize = 256; // don't let the ROB stall first
    cpu::Pipeline pipe(&root, cfg, exec);
    pipe.run();
    EXPECT_GT(pipe.lvaqFullStalls.value(), 0u);
}

TEST(Pipeline, CyclesMatchBetweenRuns)
{
    Program p = dependentChain(300);
    auto a = simulate(p, config::baseline(2));
    auto b2 = simulate(p, config::baseline(2));
    EXPECT_EQ(a.cycles, b2.cycles);
    EXPECT_EQ(a.committed, b2.committed);
}
