/**
 * @file
 * MemQueue tests: allocation/release discipline, disambiguation,
 * store-to-load forwarding, fast forwarding, port limits, combining
 * on the cache ports, and store commit behaviour.
 */

#include <gtest/gtest.h>

#include "config/machine_config.hh"
#include "core/mem_queue.hh"
#include "isa/regs.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"
#include "stats/group.hh"
#include "util/log.hh"

using namespace ddsim;
using namespace ddsim::core;
namespace reg = ddsim::isa::reg;

namespace {

struct Rig
{
    stats::Group root{nullptr, ""};
    mem::MainMemory memory{&root, 50};
    mem::Cache cache;
    MemQueue q;
    InstSeq nextSeq = 0;
    std::vector<LoadCompletion> done;

    explicit Rig(QueuePolicy policy, int size = 16)
        : cache(&root, "c",
                config::CacheParams{2048, 1, 32, 1, policy.ports},
                &memory),
          q(&root, "q", size, &cache, nullptr, policy)
    {}

    int
    addLoad(RegId base = reg::sp, std::int32_t off = 0,
            std::uint32_t ver = 1, std::uint8_t size = 4)
    {
        InstSeq seq = nextSeq++;
        return q.allocate(seq, static_cast<int>(seq) + 1, true, size,
                          base, off, ver);
    }

    int
    addStore(RegId base = reg::sp, std::int32_t off = 0,
             std::uint32_t ver = 1, std::uint8_t size = 4)
    {
        InstSeq seq = nextSeq++;
        return q.allocate(seq, static_cast<int>(seq) + 1, false, size,
                          base, off, ver);
    }

    std::vector<LoadCompletion>
    tick(Cycle now)
    {
        done.clear();
        q.tick(now, done);
        return done;
    }
};

QueuePolicy
basicPolicy(int ports = 2)
{
    QueuePolicy p;
    p.ports = ports;
    p.combining = 1;
    p.fastForward = false;
    p.forwardLatency = 1;
    return p;
}

const Addr stackAddr = layout::StackBase - 256;

} // namespace

TEST(MemQueue, LoadIssuesOnceAddressKnown)
{
    Rig r(basicPolicy());
    int s = r.addLoad();
    EXPECT_TRUE(r.tick(0).empty());     // no address yet
    r.q.setAddress(s, stackAddr, 1, false);
    auto done = r.tick(1);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].slot, s);
    // Cold miss: 1 (hit lat) + 50 (memory).
    EXPECT_EQ(done[0].readyAt, 1u + 1u + 50u);
    EXPECT_EQ(r.q.loadsFromCache.value(), 1u);
}

TEST(MemQueue, AddressNotReadyUntilItsCycle)
{
    Rig r(basicPolicy());
    int s = r.addLoad();
    r.q.setAddress(s, stackAddr, 5, false);
    EXPECT_TRUE(r.tick(4).empty());
    EXPECT_EQ(r.tick(5).size(), 1u);
}

TEST(MemQueue, LoadBlockedByUnknownOlderStoreAddress)
{
    Rig r(basicPolicy());
    int st = r.addStore();
    int ld = r.addLoad();
    r.q.setAddress(ld, stackAddr, 1, false);
    EXPECT_TRUE(r.tick(1).empty());     // store address unknown
    EXPECT_GT(r.q.disambiguationStalls.value(), 0u);
    r.q.setAddress(st, stackAddr + 64, 2, false);
    EXPECT_EQ(r.tick(2).size(), 1u);    // different line, proceeds
}

TEST(MemQueue, StoreToLoadForwarding)
{
    Rig r(basicPolicy());
    int st = r.addStore();
    int ld = r.addLoad();
    r.q.setAddress(st, stackAddr, 1, false);
    r.q.setAddress(ld, stackAddr, 1, false);
    r.q.setStoreData(st, 3);
    EXPECT_TRUE(r.tick(2).empty());     // data not ready until 3
    auto done = r.tick(3);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].readyAt, 4u);     // 1-cycle forward
    EXPECT_EQ(r.q.loadsForwarded.value(), 1u);
    EXPECT_EQ(r.q.loadsFromCache.value(), 0u);
    EXPECT_EQ(r.cache.accesses.value(), 0u);
}

TEST(MemQueue, PartialOverlapWaitsForCommit)
{
    Rig r(basicPolicy());
    int st = r.addStore(reg::sp, 0, 1, 1); // byte store
    int ld = r.addLoad(reg::sp, 0, 1, 4);  // word load, overlaps
    r.q.setAddress(st, stackAddr + 1, 1, false);
    r.q.setAddress(ld, stackAddr, 1, false);
    r.q.setStoreData(st, 1);
    EXPECT_TRUE(r.tick(2).empty());     // cannot forward a partial
    EXPECT_TRUE(r.q.commitStore(st, 3));
    auto done = r.tick(4);
    ASSERT_EQ(done.size(), 1u);         // reads merged value from cache
    EXPECT_EQ(r.q.loadsFromCache.value(), 1u);
}

TEST(MemQueue, PortLimitDelaysLoads)
{
    Rig r(basicPolicy(1));
    int a = r.addLoad(reg::sp, 0);
    int b = r.addLoad(reg::sp, 64);
    r.q.setAddress(a, stackAddr, 1, false);
    r.q.setAddress(b, stackAddr + 64, 1, false);
    auto first = r.tick(1);
    EXPECT_EQ(first.size(), 1u);        // one port -> one load
    EXPECT_GT(r.q.portDenials.value(), 0u);
    auto second = r.tick(2);
    EXPECT_EQ(second.size(), 1u);
}

TEST(MemQueue, TwoPortsServiceTwoLoads)
{
    Rig r(basicPolicy(2));
    int a = r.addLoad(reg::sp, 0);
    int b = r.addLoad(reg::sp, 64);
    r.q.setAddress(a, stackAddr, 1, false);
    r.q.setAddress(b, stackAddr + 64, 1, false);
    EXPECT_EQ(r.tick(1).size(), 2u);
}

TEST(MemQueue, CombiningLetsSameLineLoadsShareAPort)
{
    QueuePolicy p = basicPolicy(1);
    p.combining = 2;
    Rig r(p);
    int a = r.addLoad(reg::sp, 0);
    int b = r.addLoad(reg::sp, 4);
    r.q.setAddress(a, stackAddr, 1, false);
    r.q.setAddress(b, stackAddr + 4, 1, false); // same 32B line
    auto done = r.tick(1);
    EXPECT_EQ(done.size(), 2u);
    EXPECT_EQ(r.q.combinedAccesses.value(), 1u);
    EXPECT_EQ(r.cache.accesses.value(), 1u);    // one wide access
    // Both complete at the same time.
    EXPECT_EQ(done[0].readyAt, done[1].readyAt);
}

TEST(MemQueue, FastForwardCompletesBeforeAddressGeneration)
{
    QueuePolicy p = basicPolicy(2);
    p.fastForward = true;
    Rig r(p);
    int st = r.addStore(reg::sp, 8, 7);
    int ld = r.addLoad(reg::sp, 8, 7);  // offset-matched at allocate
    // Note: neither address has been computed.
    r.q.setStoreData(st, 2);
    auto done = r.tick(2);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].slot, ld);
    EXPECT_EQ(done[0].readyAt, 3u);
    EXPECT_EQ(r.q.loadsFastForwarded.value(), 1u);
    EXPECT_EQ(r.cache.accesses.value(), 0u);
}

TEST(MemQueue, FastForwardDisabledByPolicy)
{
    Rig r(basicPolicy(2)); // fastForward = false
    r.addStore(reg::sp, 8, 7);
    int ld = r.addLoad(reg::sp, 8, 7);
    EXPECT_EQ(r.q.entry(ld).fastFwdSlot, -1);
}

TEST(MemQueue, FastForwardWaitsForStoreData)
{
    QueuePolicy p = basicPolicy(2);
    p.fastForward = true;
    Rig r(p);
    int st = r.addStore(reg::sp, 8, 7);
    r.addLoad(reg::sp, 8, 7);
    EXPECT_TRUE(r.tick(0).empty());
    r.q.setStoreData(st, 5);
    EXPECT_TRUE(r.tick(4).empty());
    EXPECT_EQ(r.tick(5).size(), 1u);
}

TEST(MemQueue, FastForwardFallsBackWhenStoreLeft)
{
    QueuePolicy p = basicPolicy(2);
    p.fastForward = true;
    Rig r(p);
    int st = r.addStore(reg::sp, 8, 7);
    int ld = r.addLoad(reg::sp, 8, 7);
    EXPECT_EQ(r.q.entry(ld).fastFwdSlot, st);
    // The store's address resolves, data arrives, it commits and
    // leaves the queue before the load fires.
    r.q.setAddress(st, stackAddr + 8, 1, false);
    r.q.setStoreData(st, 1);
    EXPECT_TRUE(r.q.commitStore(st, 2));
    r.q.release(st);
    // Now the load needs its own address and the cache.
    EXPECT_TRUE(r.tick(3).empty());
    r.q.setAddress(ld, stackAddr + 8, 4, false);
    auto done = r.tick(4);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(r.q.loadsFromCache.value(), 1u);
    EXPECT_EQ(r.q.loadsFastForwarded.value(), 0u);
}

TEST(MemQueue, StoreCommitNeedsPort)
{
    Rig r(basicPolicy(1));
    int a = r.addStore(reg::sp, 0);
    int b = r.addStore(reg::sp, 64);
    r.q.setAddress(a, stackAddr, 1, false);
    r.q.setAddress(b, stackAddr + 64, 1, false);
    r.q.setStoreData(a, 1);
    r.q.setStoreData(b, 1);
    EXPECT_TRUE(r.q.commitStore(a, 2));
    EXPECT_FALSE(r.q.commitStore(b, 2)); // port exhausted this cycle
    EXPECT_TRUE(r.q.commitStore(b, 3));
    EXPECT_EQ(r.cache.writeAccesses.value(), 2u);
}

TEST(MemQueue, CommittingStoreTwiceIsIdempotent)
{
    Rig r(basicPolicy(1));
    int a = r.addStore();
    r.q.setAddress(a, stackAddr, 1, false);
    r.q.setStoreData(a, 1);
    EXPECT_TRUE(r.q.commitStore(a, 2));
    EXPECT_TRUE(r.q.commitStore(a, 2));
    EXPECT_EQ(r.cache.writeAccesses.value(), 1u);
}

TEST(MemQueue, ReleaseMustBeInOrder)
{
    setQuiet(true);
    Rig r(basicPolicy());
    r.addLoad();
    int b = r.addLoad();
    EXPECT_THROW(r.q.release(b), PanicError);
}

TEST(MemQueue, FullAndOccupancy)
{
    Rig r(basicPolicy(), 2);
    EXPECT_FALSE(r.q.full());
    int a = r.addLoad();
    r.addLoad();
    EXPECT_TRUE(r.q.full());
    EXPECT_EQ(r.q.occupancy(), 2);
    r.q.release(a);
    EXPECT_FALSE(r.q.full());
    EXPECT_EQ(r.q.occupancy(), 1);
}

TEST(MemQueue, WrapAroundKeepsOrderAndMatching)
{
    // Exercise the circular buffer across several wrap-arounds.
    Rig r(basicPolicy(2), 4);
    for (int round = 0; round < 6; ++round) {
        int st = r.addStore(reg::sp, 0, 1);
        int ld = r.addLoad(reg::sp, 0, 1);
        Cycle base = static_cast<Cycle>(round) * 10 + 1;
        r.q.setAddress(st, stackAddr, base, false);
        r.q.setAddress(ld, stackAddr, base, false);
        r.q.setStoreData(st, base);
        auto done = r.tick(base + 1);
        ASSERT_EQ(done.size(), 1u) << "round " << round;
        EXPECT_TRUE(r.q.commitStore(st, base + 2));
        r.q.release(st);
        r.q.release(ld);
    }
    EXPECT_EQ(r.q.loadsForwarded.value(), 6u);
    EXPECT_EQ(r.q.occupancy(), 0);
}

TEST(MemQueue, PanicsOnBadSlotUsage)
{
    setQuiet(true);
    Rig r(basicPolicy(2));
    int ld = r.addLoad();
    EXPECT_THROW(r.q.setStoreData(ld, 1), PanicError);
    EXPECT_THROW(r.q.commitStore(ld, 1), PanicError);
}

// ---- Adversarial same-line traffic: many stores piled onto one
// address chunk stress the store index and the unknown-address
// barrier in ways the average workload never does.

TEST(MemQueue, SameLineOnlyYoungestOlderStoreForwards)
{
    Rig r(basicPolicy(2), 16);
    // Five word stores to the same address; only the youngest has
    // ready data. A covering load must forward from it.
    int st[5];
    for (int i = 0; i < 5; ++i) {
        st[i] = r.addStore();
        r.q.setAddress(st[i], stackAddr, 1, false);
    }
    int ld = r.addLoad();
    r.q.setAddress(ld, stackAddr, 1, false);
    r.q.setStoreData(st[4], 1);
    auto done = r.tick(1);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].slot, ld);
    EXPECT_EQ(r.q.loadsForwarded.value(), 1u);
    EXPECT_EQ(r.cache.accesses.value(), 0u);
}

TEST(MemQueue, SameLineYoungestWithoutDataBlocksLoad)
{
    Rig r(basicPolicy(2), 16);
    // The three older stores all have ready data, but the youngest
    // overlapping store decides — and its data is not ready, so the
    // load must wait (never forward stale data from an older store).
    int st[4];
    for (int i = 0; i < 4; ++i) {
        st[i] = r.addStore();
        r.q.setAddress(st[i], stackAddr, 1, false);
        if (i < 3)
            r.q.setStoreData(st[i], 1);
    }
    int ld = r.addLoad();
    r.q.setAddress(ld, stackAddr, 1, false);
    EXPECT_TRUE(r.tick(1).empty());
    EXPECT_TRUE(r.tick(2).empty());
    r.q.setStoreData(st[3], 3);
    auto done = r.tick(3);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(r.q.loadsForwarded.value(), 1u);
}

TEST(MemQueue, BarrierTracksOldestUnknownStoreOutOfOrder)
{
    Rig r(basicPolicy(2), 16);
    // Four stores with unknown addresses; resolving them youngest
    // first must keep the load blocked until the *oldest* resolves.
    int st[4];
    for (int i = 0; i < 4; ++i)
        st[i] = r.addStore();
    int ld = r.addLoad(reg::sp, 128);
    r.q.setAddress(ld, stackAddr + 128, 1, false);
    for (int i = 3; i >= 1; --i) {
        EXPECT_TRUE(r.tick(static_cast<Cycle>(4 - i)).empty());
        r.q.setAddress(st[i], stackAddr + 8 * i,
                       static_cast<Cycle>(4 - i), false);
    }
    EXPECT_TRUE(r.tick(4).empty()); // st[0] still unknown
    EXPECT_EQ(r.q.disambiguationStalls.value(), 4u);
    r.q.setAddress(st[0], stackAddr, 5, false);
    auto done = r.tick(5); // disjoint addresses: cache access
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(r.q.loadsFromCache.value(), 1u);
}

TEST(MemQueue, ChunkSpanningStoreCoversLoadsOnBothSides)
{
    Rig r(basicPolicy(2), 16);
    // A word store straddling an 8-byte chunk boundary (bytes +6..+9)
    // must be visible to byte loads landing in either chunk.
    int st = r.addStore(reg::sp, 6, 1, 4);
    r.q.setAddress(st, stackAddr + 6, 1, false);
    r.q.setStoreData(st, 1);
    int lo = r.addLoad(reg::sp, 6, 1, 1);
    int hi = r.addLoad(reg::sp, 9, 1, 1);
    r.q.setAddress(lo, stackAddr + 6, 1, false);
    r.q.setAddress(hi, stackAddr + 9, 1, false);
    auto done = r.tick(1);
    EXPECT_EQ(done.size(), 2u);
    EXPECT_EQ(r.q.loadsForwarded.value(), 2u);
    EXPECT_EQ(r.cache.accesses.value(), 0u);
}

TEST(MemQueue, CancelledSameLineStoreNeitherBlocksNorForwards)
{
    Rig r(basicPolicy(2), 16);
    // A cancelled replica with a never-resolved address must not act
    // as a barrier; a cancelled resolved store must not forward.
    int unresolved = r.addStore();
    int resolved = r.addStore();
    r.q.setAddress(resolved, stackAddr, 1, false);
    r.q.setStoreData(resolved, 1);
    r.q.cancel(unresolved);
    r.q.cancel(resolved);
    int ld = r.addLoad();
    r.q.setAddress(ld, stackAddr, 1, false);
    auto done = r.tick(1);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(r.q.loadsForwarded.value(), 0u);
    EXPECT_EQ(r.q.loadsFromCache.value(), 1u);
}

TEST(MemQueue, ReleasedStoreLeavesTheIndex)
{
    Rig r(basicPolicy(2), 16);
    // Once a same-address store commits and releases, the load must
    // fall through to the cache (which now holds the value) instead
    // of chasing a stale index entry.
    int st = r.addStore();
    r.q.setAddress(st, stackAddr, 1, false);
    r.q.setStoreData(st, 1);
    EXPECT_TRUE(r.q.commitStore(st, 1));
    r.q.release(st);
    int ld = r.addLoad();
    r.q.setAddress(ld, stackAddr, 2, false);
    auto done = r.tick(2);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(r.q.loadsForwarded.value(), 0u);
    EXPECT_EQ(r.q.loadsFromCache.value(), 1u);
}

TEST(MemQueue, QueueSatisfiedFraction)
{
    QueuePolicy p = basicPolicy(2);
    p.fastForward = true;
    Rig r(p);
    // One forwarded load, one cache load.
    int st = r.addStore(reg::sp, 8, 7);
    r.addLoad(reg::sp, 8, 7);
    int other = r.addLoad(reg::sp, 128, 7);
    r.q.setStoreData(st, 1);
    r.q.setAddress(st, stackAddr + 8, 1, false);
    r.q.setAddress(other, stackAddr + 128, 1, false);
    r.tick(1);
    r.tick(2);
    EXPECT_DOUBLE_EQ(r.q.queueSatisfiedFrac(), 0.5);
}
