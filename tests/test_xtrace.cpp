/**
 * @file
 * External-trace frontend suite: the ddsim-xtrace-v1 encoder/decoder
 * (round-trip byte identity, truncation/bit-flip corruption fuzz),
 * the public text-format converter (semantics and malformed-input
 * catalogue), engine coverage for ingested and adversarial traces,
 * the ingest-annotation-vs-oracle cross-check, and the satellite
 * guards that rode along: the sampled-plan overflow fix, the
 * single-window error-bar rule, and CliArgs::getMbBytes.
 *
 * Labelled "robust" in ctest so the corruption fuzzes also run under
 * ASan/UBSan in CI.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "config/cli.hh"
#include "config/presets.hh"
#include "sim/grid_spec.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "util/log.hh"
#include "vm/convert.hh"
#include "vm/xtrace.hh"
#include "workloads/common.hh"

using namespace ddsim;

namespace {

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spill(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::shared_ptr<const prog::Program>
programShared(const char *name, std::uint64_t scale = 5)
{
    workloads::WorkloadParams p;
    p.scale = scale;
    return std::make_shared<const prog::Program>(
        workloads::build(name, p));
}

/** The checked-in public-format sample (CI converts the same file). */
std::string
sampleTracePath()
{
    return std::string(DDSIM_SOURCE_DIR) +
           "/tests/data/sample_trace.txt";
}

vm::ConvertOptions
sampleOptions()
{
    vm::ConvertOptions copts;
    copts.name = "sample";
    copts.stackLo = 0x7ffe0000;
    copts.stackHi = 0x7fffffff;
    return copts;
}

class QuietGuard
{
  public:
    QuietGuard() { setQuiet(true); }
    ~QuietGuard() { setQuiet(false); }
};

} // namespace

// ---------------------------------------------------------------------
// Round trips: encode -> decode -> re-encode is byte-identical
// ---------------------------------------------------------------------

TEST(XtraceRoundTrip, RecordedWorkloadIsByteIdentical)
{
    auto xt = vm::ExternalTrace::fromProgram(programShared("li"), 0,
                                             "workload", true);
    std::string a = tempPath("rt_a.xt"), b = tempPath("rt_b.xt");
    xt->save(a);
    vm::ExternalTrace::load(a)->save(b);
    EXPECT_EQ(slurp(a), slurp(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(XtraceRoundTrip, ConvertedTextTraceIsByteIdentical)
{
    auto xt = vm::convertTextTrace(sampleTracePath(), sampleOptions());
    std::string a = tempPath("rt_c.xt"), b = tempPath("rt_d.xt");
    xt->save(a);
    auto reloaded = vm::ExternalTrace::load(a);
    reloaded->save(b);
    EXPECT_EQ(slurp(a), slurp(b));

    // The decoded trace is semantically the converter's trace too.
    EXPECT_EQ(reloaded->instCount(), xt->instCount());
    EXPECT_EQ(reloaded->verdicts(), xt->verdicts());
    EXPECT_EQ(reloaded->hintsValid(), xt->hintsValid());
    std::remove(a.c_str());
    std::remove(b.c_str());
}

// ---------------------------------------------------------------------
// Converter semantics on the checked-in sample
// ---------------------------------------------------------------------

TEST(Converter, SampleTraceAnnotatesAsExpected)
{
    auto xt = vm::convertTextTrace(sampleTracePath(), sampleOptions());
    const vm::XAnnotation &a = xt->annotation();
    // One stack load (Local), one heap store (NonLocal), nothing
    // ambiguous; sp-tracking and the runtime oracle agree everywhere.
    EXPECT_EQ(a.memPcs, 2u);
    EXPECT_EQ(a.localPcs, 1u);
    EXPECT_EQ(a.nonLocalPcs, 1u);
    EXPECT_EQ(a.ambiguousPcs, 0u);
    EXPECT_EQ(a.spAgree, a.memOps);
    EXPECT_EQ(a.spDisagree, 0u);
    EXPECT_TRUE(xt->hintsValid());
    EXPECT_EQ(xt->format(), "text");
    EXPECT_EQ(xt->program().name(), "sample");
}

TEST(Converter, NoHintsModeLeavesTextUnhinted)
{
    vm::ConvertOptions copts = sampleOptions();
    copts.burnHints = false;
    auto xt = vm::convertTextTrace(sampleTracePath(), copts);
    EXPECT_FALSE(xt->hintsValid());
    // The verdict table is computed either way.
    EXPECT_EQ(xt->annotation().localPcs, 1u);
}

TEST(Converter, NoStackRangeMeansNothingLocal)
{
    vm::ConvertOptions copts;
    copts.name = "flat";
    auto xt = vm::convertTextTrace(sampleTracePath(), copts);
    EXPECT_EQ(xt->annotation().localPcs, 0u);
    EXPECT_EQ(xt->annotation().spDisagree, 0u);
}

// ---------------------------------------------------------------------
// Engine coverage: ingested traces behave like workloads everywhere
// ---------------------------------------------------------------------

namespace {

/** Run @p xt end-to-end under @p opts. */
sim::SimResult
runTrace(const std::shared_ptr<const vm::ExternalTrace> &xt,
         const config::MachineConfig &cfg, sim::RunOptions opts = {})
{
    opts.externalTrace = xt;
    return sim::run(xt->program(), cfg, opts);
}

} // namespace

TEST(TraceEngines, ReplayBatchedAndSampledAllRun)
{
    auto xt = vm::convertTextTrace(sampleTracePath(), sampleOptions());

    sim::SimResult replay = runTrace(xt, config::decoupled(2, 2));
    EXPECT_EQ(replay.committed, xt->instCount());
    EXPECT_GT(replay.ipc, 0.0);

    // Batched: one decode pass, byte-identical to per-point replay.
    std::vector<config::MachineConfig> cfgs = {config::baseline(2),
                                               config::decoupled(2, 2)};
    sim::RunOptions bopts;
    bopts.externalTrace = xt;
    bopts.engine = sim::Engine::Batched;
    std::vector<sim::SimResult> cols =
        sim::runBatch(xt->program(), cfgs, bopts);
    ASSERT_EQ(cols.size(), 2u);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        sim::SimResult one = runTrace(xt, cfgs[i]);
        EXPECT_EQ(cols[i].cycles, one.cycles) << i;
        EXPECT_EQ(cols[i].committed, one.committed) << i;
    }

    sim::RunOptions sopts;
    sopts.engine = sim::Engine::Sampled;
    sopts.sampling = {64, 32, 8};
    sim::SimResult sampled =
        runTrace(xt, config::decoupled(2, 2), sopts);
    // The sample is only ~200 instructions, so a complete measured
    // window is not guaranteed — but the engine must have engaged.
    EXPECT_TRUE(sampled.sampling.active);
}

TEST(TraceEngines, LiveEngineIsRejected)
{
    QuietGuard q;
    auto xt = vm::convertTextTrace(sampleTracePath(), sampleOptions());
    sim::RunOptions opts;
    opts.engine = sim::Engine::Live;
    EXPECT_THROW(runTrace(xt, config::decoupled(2, 2), opts),
                 ConfigError);
}

TEST(TraceEngines, ExplicitTraceIsMutuallyExclusive)
{
    QuietGuard q;
    auto xt = vm::convertTextTrace(sampleTracePath(), sampleOptions());
    sim::RunOptions opts;
    opts.externalTrace = xt;
    opts.trace = vm::ExternalTrace::sharedTrace(xt);
    EXPECT_THROW(sim::run(xt->program(), config::decoupled(2, 2), opts),
                 ConfigError);
}

TEST(TraceEngines, StaticHybridUsesIngestVerdicts)
{
    auto xt = vm::convertTextTrace(sampleTracePath(), sampleOptions());
    config::MachineConfig cfg = config::decoupled(2, 2);
    cfg.classifier = config::ClassifierKind::StaticHybrid;
    sim::SimResult r = runTrace(xt, cfg);
    // Every memory pc of the sample has an unambiguous verdict, so
    // the static table decides every access and none missteer.
    EXPECT_GT(r.staticDecided, 0u);
    EXPECT_EQ(r.missteered, 0u);
    EXPECT_GT(r.toLvaq, 0u);
}

TEST(TraceEngines, SweepRunnerRunsExternalColumns)
{
    std::string saved = tempPath("sweep.xt");
    vm::convertTextTrace(sampleTracePath(), sampleOptions())
        ->save(saved);
    auto xt = vm::ExternalTrace::loadCached(saved);
    const config::MachineConfig cfgs[] = {config::decoupled(2, 1),
                                          config::decoupled(2, 2)};
    std::vector<sim::SweepJob> jobs;
    for (const config::MachineConfig &cfg : cfgs) {
        sim::SweepJob job;
        job.program = xt->sharedProgram();
        job.cfg = cfg;
        job.opts.externalTrace = xt;
        jobs.push_back(std::move(job));
    }
    std::vector<sim::SimResult> results =
        sim::SweepRunner::runAll(std::move(jobs), 2);
    ASSERT_EQ(results.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        sim::SimResult one = runTrace(xt, cfgs[i]);
        EXPECT_EQ(results[i].cycles, one.cycles) << i;
    }
}

// ---------------------------------------------------------------------
// Adversarial synthetic workloads run through every engine
// ---------------------------------------------------------------------

TEST(Adversarial, AllGeneratorsRunAllEngines)
{
    for (const char *name :
         {"ptrchase", "deeprec", "hugeframe", "allocaframe"}) {
        ASSERT_NE(workloads::find(name), nullptr) << name;
        auto xt = vm::ExternalTrace::fromProgram(
            programShared(name, 2), 20000, "workload", true);
        EXPECT_GT(xt->instCount(), 0u) << name;
        // Annotation self-check: sp-tracking never disagrees with the
        // oracle on generator output (the bases are honest).
        EXPECT_EQ(xt->annotation().spDisagree, 0u) << name;

        sim::SimResult replay = runTrace(xt, config::decoupled(2, 2));
        EXPECT_EQ(replay.committed, xt->instCount()) << name;

        sim::RunOptions bopts;
        bopts.externalTrace = xt;
        bopts.engine = sim::Engine::Batched;
        std::vector<sim::SimResult> cols = sim::runBatch(
            xt->program(), {config::decoupled(2, 2)}, bopts);
        ASSERT_EQ(cols.size(), 1u) << name;
        EXPECT_EQ(cols[0].cycles, replay.cycles) << name;

        sim::RunOptions sopts;
        sopts.engine = sim::Engine::Sampled;
        sopts.sampling = {1024, 512, 64};
        sim::SimResult sampled =
            runTrace(xt, config::decoupled(2, 2), sopts);
        EXPECT_TRUE(sampled.sampling.active) << name;
    }
}

TEST(Adversarial, RegistryExcludesThemFromDefaultSet)
{
    // The 12-workload baseline must stay byte-identical: adversarial
    // generators are find()-able but never part of all().
    for (const auto &w : workloads::all())
        for (const char *name :
             {"ptrchase", "deeprec", "hugeframe", "allocaframe"})
            EXPECT_STRNE(w.name, name);
}

// ---------------------------------------------------------------------
// Corruption fuzz: xtrace decoder
// ---------------------------------------------------------------------

TEST(XtraceCorruption, EveryTruncationIsDetected)
{
    QuietGuard q;
    auto xt = vm::ExternalTrace::fromProgram(programShared("li", 1),
                                             300, "workload", true);
    std::string good = tempPath("xt_trunc.xt");
    xt->save(good);
    std::string bytes = slurp(good);
    ASSERT_GT(bytes.size(), 40u);

    std::string path = tempPath("xt_trunc_cut.xt");
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        spill(path, bytes.substr(0, len));
        try {
            vm::ExternalTrace::load(path);
            ADD_FAILURE() << "truncation to " << len
                          << " bytes decoded successfully";
        } catch (const TraceCorruptError &e) {
            EXPECT_LE(e.byteOffset(), bytes.size());
        } catch (const IoError &) {
            // Zero-length opens can surface as I/O failures.
        }
    }
    std::remove(path.c_str());
    std::remove(good.c_str());
}

TEST(XtraceCorruption, BitFlipsNeverEscapeTheTaxonomy)
{
    QuietGuard q;
    auto xt = vm::ExternalTrace::fromProgram(programShared("li", 1),
                                             120, "workload", true);
    std::string good = tempPath("xt_flip.xt");
    xt->save(good);
    std::string bytes = slurp(good);
    std::string path = tempPath("xt_flip_bit.xt");
    std::size_t detected = 0, decoded = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[i] = static_cast<char>(
                mutated[i] ^ static_cast<char>(1u << bit));
            spill(path, mutated);
            // A flip may mutate payload values without breaking any
            // validated invariant; what it must never do is crash or
            // throw outside the taxonomy.
            try {
                vm::ExternalTrace::load(path);
                ++decoded;
            } catch (const TraceCorruptError &) {
                ++detected;
            }
        }
    }
    EXPECT_GT(detected, 0u); // structural damage is caught...
    EXPECT_GT(decoded, 0u);  // ...and benign flips still decode
    std::remove(path.c_str());
    std::remove(good.c_str());
}

// ---------------------------------------------------------------------
// Corruption fuzz: text-format converter
// ---------------------------------------------------------------------

namespace {

/** Expect conversion of @p text to raise TraceCorruptError. */
void
expectCorrupt(const std::string &text, const char *what)
{
    QuietGuard q;
    try {
        vm::convertTextTraceBuffer(text, "buf.txt", {});
        ADD_FAILURE() << what << ": converted successfully";
    } catch (const TraceCorruptError &e) {
        EXPECT_LE(e.byteOffset(), text.size()) << what;
    }
}

} // namespace

TEST(ConverterCorruption, MalformedInputCatalogue)
{
    expectCorrupt("", "empty input");
    expectCorrupt("# only a comment\n", "comment-only input");
    expectCorrupt("400000 0 1\n", "truncated line");
    expectCorrupt("400000 0 1 2 3 4 5\n", "overlong line");
    expectCorrupt("zzüge 0 1 2 3\n", "bad pc token");
    expectCorrupt("400000 7 1 2 3\n", "bad op type");
    expectCorrupt("400000 0 x 2 3\n", "bad dest");
    expectCorrupt("400000 0 -2 2 3\n", "dest below -1");
    expectCorrupt("400000 2 1 2 3\n", "memory record without address");
    expectCorrupt("400000 2 1 2 3 zz\n", "bad memory address");
    expectCorrupt("400000 0 1 2 3 10\n",
                  "address on a non-memory record");
    expectCorrupt("400000 0 1 2 3\n400000 1 1 2 3\n",
                  "pc reused with different fields");
    // A memory pc observed branching: 400008 (rank 1) is followed by
    // 400000 (rank 0), never its sequential successor.
    expectCorrupt("400008 2 1 2 3 10\n"
                  "400000 0 1 2 3\n"
                  "400008 2 1 2 3 10\n",
                  "memory instruction that branches");
}

TEST(ConverterCorruption, BitFlipsNeverEscapeTheTaxonomy)
{
    QuietGuard q;
    std::string text;
    for (int i = 0; i < 8; ++i) {
        char line[64];
        std::snprintf(line, sizeof line, "40%04x 2 1 2 -1 %x\n", i * 4,
                      0x1000 + i * 8);
        text += line;
    }
    text += "400100 0 4 1 -1\n";
    std::size_t detected = 0, converted = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = text;
            mutated[i] = static_cast<char>(
                mutated[i] ^ static_cast<char>(1u << bit));
            try {
                vm::convertTextTraceBuffer(mutated, "flip.txt", {});
                ++converted;
            } catch (const TraceCorruptError &) {
                ++detected;
            }
        }
    }
    EXPECT_GT(detected, 0u);
    EXPECT_GT(converted, 0u);
}

// ---------------------------------------------------------------------
// Grid-spec integration for external-trace points
// ---------------------------------------------------------------------

namespace {

sim::GridSpec
traceGrid(const std::string &tracePath)
{
    sim::GridSpec spec;
    spec.title = "trace grid";
    sim::GridJob job;
    job.id = 0;
    job.workload = "sample";
    job.scale = 1;
    job.seed = 0;
    job.tracePath = tracePath;
    job.cfg = config::decoupled(2, 2);
    spec.jobs.push_back(std::move(job));
    return spec;
}

} // namespace

TEST(TraceGrid, RoundTripsThroughJson)
{
    sim::GridSpec spec = traceGrid("traces/sample.xt");
    std::string path = tempPath("trace_grid.json");
    spec.writeFile(path);
    sim::GridSpec back = sim::GridSpec::fromFile(path);
    ASSERT_EQ(back.jobs.size(), 1u);
    EXPECT_EQ(back.jobs[0].tracePath, "traces/sample.xt");
    EXPECT_EQ(back.jobs[0].workload, "sample");
    std::remove(path.c_str());
}

TEST(TraceGrid, RejectsAnnotateAndLiveEngine)
{
    QuietGuard q;
    sim::GridSpec spec = traceGrid("traces/sample.xt");
    spec.jobs[0].annotate = "safe";
    EXPECT_THROW(spec.validate(), FatalError);

    spec = traceGrid("traces/sample.xt");
    spec.jobs[0].engine = sim::Engine::Live;
    EXPECT_THROW(spec.validate(), FatalError);

    // Programless build attempts are refused too.
    spec = traceGrid("traces/sample.xt");
    EXPECT_THROW(sim::buildGridProgram(spec.jobs[0]), FatalError);
}

// ---------------------------------------------------------------------
// Satellite: the sampled-plan guard is overflow-proof
// ---------------------------------------------------------------------

TEST(SamplingGuard, RejectsPlansThatDoNotFit)
{
    QuietGuard q;
    auto prog = programShared("li");
    sim::RunOptions opts;
    opts.engine = sim::Engine::Sampled;
    opts.sampling = {100, 200, 0}; // detail alone exceeds the period
    EXPECT_THROW(sim::run(*prog, config::decoupled(2, 2), opts),
                 ConfigError);
}

TEST(SamplingGuard, RejectsU64WrappingPlans)
{
    QuietGuard q;
    auto prog = programShared("li");
    const std::uint64_t huge =
        std::numeric_limits<std::uint64_t>::max() - 1000;

    // warmup + detail wraps past zero: the naive sum check passed
    // this and the skip length underflowed.
    sim::RunOptions opts;
    opts.engine = sim::Engine::Sampled;
    opts.sampling = {4096, 2560, huge};
    EXPECT_THROW(sim::run(*prog, config::decoupled(2, 2), opts),
                 ConfigError);

    opts.sampling = {4096, huge, 100};
    EXPECT_THROW(sim::run(*prog, config::decoupled(2, 2), opts),
                 ConfigError);
}

TEST(SamplingGuard, ValidPlanStillRuns)
{
    auto prog = programShared("li");
    sim::RunOptions opts;
    opts.engine = sim::Engine::Sampled;
    opts.sampling = {4096, 2560, 256};
    sim::SimResult r = sim::run(*prog, config::decoupled(2, 2), opts);
    EXPECT_TRUE(r.sampling.active);
}

// ---------------------------------------------------------------------
// Satellite: single-window sampled runs carry no error bar
// ---------------------------------------------------------------------

TEST(SingleWindow, NoConfidenceIntervalInManifest)
{
    auto prog = programShared("li", 2);
    sim::RunOptions opts;
    opts.engine = sim::Engine::Sampled;
    opts.maxInsts = 2000;
    opts.sampling = {1u << 20, 1024, 128}; // one window at most
    opts.captureManifest = true;
    sim::SimResult r = sim::run(*prog, config::decoupled(2, 2), opts);
    ASSERT_LE(r.sampling.windows, 1u);
    EXPECT_EQ(r.manifestJson.find("ipc_ci95"), std::string::npos);
}

TEST(SingleWindow, MultiWindowRunsStillCarryOne)
{
    auto prog = programShared("li");
    sim::RunOptions opts;
    opts.engine = sim::Engine::Sampled;
    opts.sampling = {4096, 2560, 256};
    opts.captureManifest = true;
    sim::SimResult r = sim::run(*prog, config::decoupled(2, 2), opts);
    ASSERT_GE(r.sampling.windows, 2u);
    EXPECT_NE(r.manifestJson.find("ipc_ci95"), std::string::npos);
}

// ---------------------------------------------------------------------
// Satellite: CliArgs::getMbBytes is overflow- and sign-safe
// ---------------------------------------------------------------------

namespace {

std::size_t
mbBytes(const char *arg)
{
    const char *argv[] = {"prog", arg};
    config::CliArgs args(2, argv);
    return args.getMbBytes("trace-cache-mb", 0);
}

} // namespace

TEST(MbBytes, ParsesAndScales)
{
    EXPECT_EQ(mbBytes("--trace-cache-mb=16"),
              std::size_t{16} << 20);
    EXPECT_EQ(mbBytes("--trace-cache-mb=0"), 0u);

    const char *argv[] = {"prog"};
    config::CliArgs args(1, argv);
    EXPECT_EQ(args.getMbBytes("trace-cache-mb", 123), 123u);
}

TEST(MbBytes, RejectsNegativeAndOverflow)
{
    QuietGuard q;
    EXPECT_THROW(mbBytes("--trace-cache-mb=-3"), ConfigError);
    EXPECT_THROW(mbBytes("--trace-cache-mb=bananas"), ConfigError);
    // Parses as int64 but the << 20 would overflow size_t.
    EXPECT_THROW(mbBytes("--trace-cache-mb=17592186044416"),
                 ConfigError);
}
