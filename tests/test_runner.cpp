/**
 * @file
 * Runner tests: the top-level simulate-one-program API, result
 * snapshot fields, and stats capture.
 */

#include <gtest/gtest.h>

#include "config/presets.hh"
#include "sim/runner.hh"
#include "sim/table.hh"
#include "util/log.hh"
#include "workloads/common.hh"

#include <sstream>

using namespace ddsim;
using namespace ddsim::sim;

namespace {

prog::Program
program(const char *name = "li", std::uint64_t scale = 10)
{
    workloads::WorkloadParams p;
    p.scale = scale;
    return workloads::build(name, p);
}

} // namespace

TEST(Runner, BaselineRunFillsResult)
{
    auto prog = program();
    SimResult r = run(prog, config::baseline(2));
    EXPECT_EQ(r.program, "li");
    EXPECT_EQ(r.notation, "(2+0)");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.committed, 1000u);
    EXPECT_GT(r.ipc, 0.5);
    EXPECT_GT(r.loads, 0u);
    EXPECT_GT(r.stores, 0u);
    EXPECT_GT(r.l1Accesses, 0u);
    EXPECT_EQ(r.lvcAccesses, 0u);
    EXPECT_GT(r.l2Accesses, 0u);
}

TEST(Runner, DecoupledRunUsesLvc)
{
    auto prog = program();
    SimResult r = run(prog, config::decoupled(2, 2));
    EXPECT_EQ(r.notation, "(2+2)");
    EXPECT_GT(r.lvcAccesses, 0u);
    EXPECT_GT(r.lvaqLoads, 0u);
    EXPECT_DOUBLE_EQ(r.classifierAccuracy, 1.0); // oracle
    EXPECT_EQ(r.missteered, 0u);
}

TEST(Runner, CommittedCountIsConfigIndependent)
{
    auto prog = program();
    SimResult a = run(prog, config::baseline(1));
    SimResult b = run(prog, config::baseline(4));
    SimResult c = run(prog, config::decoupled(2, 2));
    SimResult d = run(prog, config::decoupledOptimized(2, 2));
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.committed, c.committed);
    EXPECT_EQ(a.committed, d.committed);
}

TEST(Runner, MaxInstsTruncates)
{
    auto prog = program();
    RunOptions opts;
    opts.maxInsts = 5000;
    SimResult r = run(prog, config::baseline(2), opts);
    EXPECT_EQ(r.committed, 5000u);
}

TEST(Runner, StatsCaptureOptional)
{
    auto prog = program("compress", 2);
    SimResult noStats = run(prog, config::baseline(2));
    EXPECT_TRUE(noStats.statsText.empty());
    RunOptions opts;
    opts.captureStats = true;
    SimResult withStats = run(prog, config::baseline(2), opts);
    EXPECT_NE(withStats.statsText.find("cpu.cycles"),
              std::string::npos);
    EXPECT_NE(withStats.statsText.find("memhier.l1d.accesses"),
              std::string::npos);
}

TEST(Runner, WarmupExcludesColdStart)
{
    auto prog = program("swim", 4);
    RunOptions cold;
    SimResult c = run(prog, config::baseline(2), cold);

    RunOptions warm;
    warm.warmupInsts = 60000;
    SimResult w = run(prog, config::baseline(2), warm);

    // The warm measurement excludes the grid-initialization phase and
    // its cold misses: fewer committed instructions, and a miss rate
    // that is not higher than the whole-program one.
    EXPECT_LT(w.committed, c.committed);
    EXPECT_GT(w.committed, 0u);
    EXPECT_LE(w.l1MissRate, c.l1MissRate + 0.01);
}

TEST(Runner, WarmupPlusMaxInstsMeasuresTheWindow)
{
    auto prog = program("li", 10);
    RunOptions opts;
    opts.warmupInsts = 20000;
    opts.maxInsts = 30000;
    SimResult r = run(prog, config::decoupled(2, 2), opts);
    // The window is approximate at its edges: instructions in flight
    // when warmup ends commit inside the window, and the warmup stop
    // quantizes to a fetch group. Both slacks are bounded by the ROB
    // size and one fetch group respectively.
    // (in flight = ROB 128 + fetch queue 32, plus a fetch group.)
    EXPECT_GE(r.committed, 30000u - 16u);
    EXPECT_LE(r.committed, 30000u + 128u + 32u + 16u);
}

TEST(Runner, SpeedupHelper)
{
    SimResult a, b;
    a.ipc = 3.0;
    b.ipc = 2.0;
    EXPECT_DOUBLE_EQ(speedup(a, b), 1.5);
    EXPECT_NE(a.summary().find("IPC"), std::string::npos);
}

TEST(Runner, InvalidConfigIsFatal)
{
    setQuiet(true);
    auto prog = program("compress", 1);
    config::MachineConfig cfg = config::baseline(2);
    cfg.robSize = -1;
    EXPECT_THROW(run(prog, cfg), FatalError);
}

TEST(Table, AlignedOutput)
{
    Table t({"prog", "ipc"});
    t.addRow({"li", Table::num(3.14159, 2)});
    t.addRow({"compress", Table::pct(0.925)});
    std::ostringstream ss;
    t.print(ss);
    std::string out = ss.str();
    EXPECT_NE(out.find("prog"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find("92.5%"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}
