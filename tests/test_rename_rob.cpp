/**
 * @file
 * Rename table and reorder buffer tests: producer tracking, stale-tag
 * detection across ROB slot reuse, and circular buffer discipline.
 */

#include <gtest/gtest.h>

#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "util/log.hh"

using namespace ddsim;
using namespace ddsim::cpu;
using ddsim::isa::gprRef;
using ddsim::isa::fprRef;

TEST(Rename, FreshTableHasNoProducers)
{
    RenameTable rt;
    EXPECT_FALSE(rt.producer(gprRef(5)).valid());
    EXPECT_FALSE(rt.producer(fprRef(5)).valid());
}

TEST(Rename, SetAndLookup)
{
    RenameTable rt;
    rt.setProducer(gprRef(3), {7, 100});
    ProducerTag t = rt.producer(gprRef(3));
    EXPECT_TRUE(t.valid());
    EXPECT_EQ(t.robIdx, 7);
    EXPECT_EQ(t.seq, 100u);
    // FPR 3 is a different register.
    EXPECT_FALSE(rt.producer(fprRef(3)).valid());
}

TEST(Rename, NewerProducerShadowsOlder)
{
    RenameTable rt;
    rt.setProducer(gprRef(3), {7, 100});
    rt.setProducer(gprRef(3), {9, 101});
    EXPECT_EQ(rt.producer(gprRef(3)).robIdx, 9);
}

TEST(Rename, ClearOnlyIfStillProducer)
{
    RenameTable rt;
    rt.setProducer(gprRef(3), {7, 100});
    rt.setProducer(gprRef(3), {9, 101});
    // Committing the *older* instruction must not clear the newer map.
    rt.clearIfProducer(gprRef(3), {7, 100});
    EXPECT_TRUE(rt.producer(gprRef(3)).valid());
    rt.clearIfProducer(gprRef(3), {9, 101});
    EXPECT_FALSE(rt.producer(gprRef(3)).valid());
}

TEST(Rename, ResetClearsAll)
{
    RenameTable rt;
    rt.setProducer(gprRef(1), {1, 1});
    rt.setProducer(fprRef(2), {2, 2});
    rt.reset();
    EXPECT_FALSE(rt.producer(gprRef(1)).valid());
    EXPECT_FALSE(rt.producer(fprRef(2)).valid());
}

TEST(Rob, AllocateAndReleaseCircularly)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    int a = rob.allocate();
    int b = rob.allocate();
    EXPECT_EQ(rob.occupancy(), 2);
    EXPECT_EQ(rob.headIdx(), a);
    rob.releaseHead();
    EXPECT_EQ(rob.headIdx(), b);
    // Wrap around.
    rob.allocate();
    rob.allocate();
    rob.allocate();
    EXPECT_TRUE(rob.full());
    EXPECT_THROW(rob.allocate(), PanicError);
}

TEST(Rob, NthIteratesOldestFirst)
{
    Rob rob(4);
    rob.allocate();          // slot 0
    rob.allocate();          // slot 1
    rob.releaseHead();       // head moves to slot 1
    int c = rob.allocate();  // slot 2
    int d = rob.allocate();  // slot 3
    int e = rob.allocate();  // wraps to slot 0
    EXPECT_EQ(rob.nth(0), rob.headIdx());
    EXPECT_EQ(rob.nth(1), c);
    EXPECT_EQ(rob.nth(2), d);
    EXPECT_EQ(rob.nth(3), e);
    EXPECT_EQ(e, 0); // physical wrap
}

TEST(Rob, EntriesResetOnAllocate)
{
    setQuiet(true);
    Rob rob(2);
    int a = rob.allocate();
    rob[a].completed = true;
    rob[a].readyAt = 99;
    rob.releaseHead();
    int b = rob.allocate(); // may reuse slot a
    if (b == a) {
        EXPECT_FALSE(rob[b].completed);
        EXPECT_EQ(rob[b].readyAt, 0u);
    }
    EXPECT_TRUE(rob[b].valid);
}

TEST(Rob, ReleaseEmptyPanics)
{
    setQuiet(true);
    Rob rob(2);
    EXPECT_THROW(rob.releaseHead(), PanicError);
}
