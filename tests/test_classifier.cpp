/**
 * @file
 * Classifier and region-predictor tests: every classification scheme,
 * verification counting, and predictor training behaviour.
 */

#include <gtest/gtest.h>

#include "core/classifier.hh"
#include "core/region_predictor.hh"
#include "stats/group.hh"
#include "util/rng.hh"

using namespace ddsim;
using namespace ddsim::core;
using ddsim::config::ClassifierKind;
namespace reg = ddsim::isa::reg;

namespace {

vm::DynInst
makeMem(bool localHint, bool stackAddr, RegId base,
        std::uint32_t pcIdx = 0)
{
    vm::DynInst di;
    di.pcIdx = pcIdx;
    di.inst.op = isa::OpCode::LW;
    di.inst.rt = reg::t0;
    di.inst.rs = base;
    di.inst.localHint = localHint;
    di.effAddr = stackAddr ? layout::StackBase - 64 : layout::HeapBase;
    di.stackAccess = stackAddr;
    di.accessSize = 4;
    return di;
}

} // namespace

TEST(Classifier, NoneAlwaysLsq)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::None);
    EXPECT_EQ(c.classify(makeMem(true, true, reg::sp)), Stream::Lsq);
    EXPECT_EQ(c.classify(makeMem(false, false, reg::t0)), Stream::Lsq);
}

TEST(Classifier, AnnotationFollowsCompilerBit)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::Annotation);
    EXPECT_EQ(c.classify(makeMem(true, true, reg::t0)), Stream::Lvaq);
    EXPECT_EQ(c.classify(makeMem(false, true, reg::sp)), Stream::Lsq);
    EXPECT_EQ(c.toLvaq.value(), 1u);
    EXPECT_EQ(c.classified.value(), 2u);
}

TEST(Classifier, SpBaseHeuristic)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::SpBase);
    EXPECT_EQ(c.classify(makeMem(false, true, reg::sp)), Stream::Lvaq);
    EXPECT_EQ(c.classify(makeMem(false, true, reg::fp)), Stream::Lvaq);
    // A stack access via a computed pointer escapes the heuristic --
    // the <5% case the paper mentions.
    EXPECT_EQ(c.classify(makeMem(false, true, reg::t1)), Stream::Lsq);
}

TEST(Classifier, OracleUsesActualAddress)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::Oracle);
    EXPECT_EQ(c.classify(makeMem(false, true, reg::t1)), Stream::Lvaq);
    EXPECT_EQ(c.classify(makeMem(true, false, reg::sp)), Stream::Lsq);
}

TEST(Classifier, VerifyCountsMispredictions)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::Annotation);
    auto di = makeMem(true, false, reg::t0); // hint says local, isn't
    Stream s = c.classify(di);
    EXPECT_EQ(s, Stream::Lvaq);
    EXPECT_FALSE(c.verify(di, s));
    EXPECT_EQ(c.mispredicted.value(), 1u);
    auto ok = makeMem(true, true, reg::sp);
    EXPECT_TRUE(c.verify(ok, c.classify(ok)));
    EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
}

TEST(Classifier, OracleIsAlwaysAccurate)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::Oracle);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        auto di = makeMem(rng.chance(0.5), rng.chance(0.5),
                          rng.chance(0.5) ? reg::sp : reg::t0,
                          static_cast<std::uint32_t>(rng.below(64)));
        EXPECT_TRUE(c.verify(di, c.classify(di)));
    }
    EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
}

TEST(Classifier, PredictorLearnsFromResolution)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::Predictor);
    // pc 5 hints local but always resolves non-local.
    auto di = makeMem(true, false, reg::t0, 5);
    Stream first = c.classify(di);
    EXPECT_EQ(first, Stream::Lvaq); // untrained: follows hint
    c.verify(di, first);            // trains: non-local
    Stream second = c.classify(di);
    EXPECT_EQ(second, Stream::Lsq); // learned
    EXPECT_TRUE(c.verify(di, second));
}

TEST(Classifier, StaticHybridFollowsVerdictTable)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::StaticHybrid);
    c.setStaticVerdicts({StaticVerdict::NonLocal,
                         StaticVerdict::Local,
                         StaticVerdict::Ambiguous});
    // Decided pcs ignore both the hint bit and the predictor.
    EXPECT_EQ(c.classify(makeMem(true, true, reg::sp, 0)),
              Stream::Lsq);
    EXPECT_EQ(c.classify(makeMem(false, false, reg::t0, 1)),
              Stream::Lvaq);
    EXPECT_EQ(c.staticDecided.value(), 2u);
    // Ambiguous pc: untrained predictor follows the hint.
    EXPECT_EQ(c.classify(makeMem(true, true, reg::t0, 2)),
              Stream::Lvaq);
    EXPECT_EQ(c.classify(makeMem(false, true, reg::t0, 2)),
              Stream::Lsq);
    EXPECT_EQ(c.staticDecided.value(), 2u);
    // Beyond the table: Ambiguous.
    EXPECT_EQ(c.classify(makeMem(true, true, reg::t0, 99)),
              Stream::Lvaq);
    EXPECT_EQ(c.staticDecided.value(), 2u);
}

TEST(Classifier, StaticHybridTrainsPredictorOnlyOnAmbiguous)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::StaticHybrid, 64);
    c.setStaticVerdicts({StaticVerdict::Local});
    // pc 0 is statically Local but resolves non-local (a wrong static
    // verdict): counted as missteered, but it must NOT train the
    // predictor entry that ambiguous pc 64 aliases onto.
    auto wrong = makeMem(true, false, reg::t0, 0);
    Stream s = c.classify(wrong);
    EXPECT_EQ(s, Stream::Lvaq);
    EXPECT_FALSE(c.verify(wrong, s));
    EXPECT_EQ(c.mispredicted.value(), 1u);
    // pc 64 aliases pc 0 in a 64-entry predictor; still untrained, so
    // it follows its hint.
    EXPECT_EQ(c.classify(makeMem(true, true, reg::t0, 64)),
              Stream::Lvaq);
    // Ambiguous pcs do train it.
    auto amb = makeMem(true, false, reg::t0, 64);
    c.verify(amb, Stream::Lvaq);
    EXPECT_EQ(c.classify(makeMem(true, false, reg::t0, 64)),
              Stream::Lsq);
}

TEST(Classifier, StaticHybridWithoutTableActsAsPredictor)
{
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::StaticHybrid);
    auto di = makeMem(true, false, reg::t0, 5);
    Stream first = c.classify(di);
    EXPECT_EQ(first, Stream::Lvaq); // untrained: follows hint
    c.verify(di, first);
    EXPECT_EQ(c.classify(di), Stream::Lsq); // learned
    EXPECT_EQ(c.staticDecided.value(), 0u);
}

TEST(RegionPredictor, UntrainedUsesHint)
{
    RegionPredictor p(64);
    EXPECT_TRUE(p.predictLocal(7, true));
    EXPECT_FALSE(p.predictLocal(7, false));
}

TEST(RegionPredictor, OneBitLastRegion)
{
    RegionPredictor p(64);
    p.update(9, true);
    EXPECT_TRUE(p.predictLocal(9, false));
    p.update(9, false);
    EXPECT_FALSE(p.predictLocal(9, true));
}

TEST(RegionPredictor, SizeRoundsToPowerOfTwo)
{
    RegionPredictor p(100);
    EXPECT_EQ(p.size(), 128);
}

TEST(RegionPredictor, AliasingSharesEntries)
{
    RegionPredictor p(16);
    p.update(3, true);
    // pc 3+16 aliases to the same entry in a 16-entry table.
    EXPECT_TRUE(p.predictLocal(19, false));
}

TEST(RegionPredictor, HighAccuracyOnStablePattern)
{
    // The paper's claim: a 1-bit predictor gets ~99.9% of dynamic
    // references right because per-instruction regions are stable.
    stats::Group root(nullptr, "");
    Classifier c(&root, ClassifierKind::Predictor);
    Rng rng(17);
    // 32 static instructions, each with a fixed region; 1 flaky one.
    bool region[32];
    for (int i = 0; i < 32; ++i)
        region[i] = rng.chance(0.5);
    for (int n = 0; n < 5000; ++n) {
        int pc = static_cast<int>(rng.below(32));
        bool local = pc == 0 ? rng.chance(0.5) : region[pc];
        auto di = makeMem(local, local, reg::sp,
                          static_cast<std::uint32_t>(pc));
        c.verify(di, c.classify(di));
    }
    EXPECT_GT(c.accuracy(), 0.97);
}
