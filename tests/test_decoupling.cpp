/**
 * @file
 * End-to-end decoupling tests: the paper's qualitative findings must
 * hold on the synthetic workloads — LVC hit rates, load-imbalance
 * behaviour of (N+1), bandwidth relief from (N+2), fast-forwarding
 * and combining effects, and L2 traffic changes.
 */

#include <gtest/gtest.h>

#include "config/presets.hh"
#include "sim/runner.hh"
#include "workloads/common.hh"

using namespace ddsim;
using namespace ddsim::sim;

namespace {

prog::Program
wl(const char *name, std::uint64_t scaleFactor = 1)
{
    const workloads::WorkloadInfo *info = workloads::find(name);
    workloads::WorkloadParams p;
    p.scale = info->defaultScale * scaleFactor / 4; // ~75 K insts
    if (p.scale == 0)
        p.scale = 1;
    return workloads::build(name, p);
}

} // namespace

TEST(Decoupling, ArchitecturalResultsUnchangedByConfiguration)
{
    // The timing configuration must never change what the program
    // computes (checksums are printed by the functional executor and
    // committed counts come from the same stream).
    for (const char *name : {"li", "vortex", "swim"}) {
        auto prog = wl(name);
        SimResult base = run(prog, config::baseline(2));
        SimResult dec = run(prog, config::decoupled(2, 2));
        SimResult opt = run(prog, config::decoupledOptimized(2, 2));
        EXPECT_EQ(base.committed, dec.committed) << name;
        EXPECT_EQ(base.committed, opt.committed) << name;
    }
}

TEST(Decoupling, LvcHitRateIsHigh)
{
    // Paper Fig. 6: a 2 KB LVC hits > 99% for nearly all programs.
    for (const char *name : {"li", "vortex", "perl", "compress"}) {
        auto prog = wl(name);
        SimResult r = run(prog, config::decoupled(3, 2));
        ASSERT_GT(r.lvcAccesses, 0u) << name;
        EXPECT_LT(r.lvcMissRate, 0.02) << name;
    }
}

TEST(Decoupling, LvaqReceivesTheLocalStream)
{
    auto prog = wl("vortex");
    SimResult r = run(prog, config::decoupled(3, 2));
    // Vortex-like: ~3/4 of references are local.
    double lvaqShare =
        static_cast<double>(r.lvaqLoads) /
        static_cast<double>(r.loads);
    EXPECT_GT(lvaqShare, 0.5);
}

TEST(Decoupling, SinglePortLvcCreatesImbalance)
{
    // Paper Fig. 7: when the L1 already has adequate bandwidth, a
    // one-port LVC becomes the bottleneck and (N+1) loses performance
    // against (N+0); a second LVC port recovers most of it. (li-like
    // additionally gains L1 conflict relief from the LVC -- Section
    // 4.2.1 -- which can mask the dip, so the clean dip is asserted
    // on vortex and the port-recovery on both.)
    for (const char *name : {"vortex", "li"}) {
        auto prog = wl(name, 2);
        SimResult n1 = run(prog, config::decoupled(4, 1));
        SimResult n2 = run(prog, config::decoupled(4, 2));
        EXPECT_GT(n2.ipc, n1.ipc) << name
            << ": (4+2) should beat (4+1)";
        if (std::string(name) == "vortex") {
            SimResult n0 = run(prog, config::baseline(4));
            EXPECT_LT(n1.ipc, n0.ipc)
                << "(4+1) should lose against (4+0)";
        }
    }
}

TEST(Decoupling, LvcRelievesBandwidthPressure)
{
    // Paper Fig. 11: under bandwidth pressure (N=2), a 2-port LVC
    // with the proposed optimizations gives a large speedup for
    // bandwidth-bound local-heavy programs (paper: >25% for li-like
    // behaviour).
    for (const char *name : {"vortex", "li"}) {
        auto prog = wl(name, 2);
        SimResult n0 = run(prog, config::baseline(2));
        SimResult n2 = run(prog, config::decoupledOptimized(2, 2));
        EXPECT_GT(n2.ipc, n0.ipc * 1.05)
            << name << ": optimized (2+2) should clearly beat (2+0)";
    }
}

TEST(Decoupling, AmpleBandwidthShrinksTheBenefit)
{
    // Paper Section 4.2.3: with N=4 the gain drops to a few percent.
    auto prog = wl("li", 2);
    SimResult tight0 = run(prog, config::baseline(2));
    SimResult tight2 = run(prog, config::decoupled(2, 2));
    SimResult ample0 = run(prog, config::baseline(4));
    SimResult ample2 = run(prog, config::decoupled(4, 2));
    double gainTight = tight2.ipc / tight0.ipc;
    double gainAmple = ample2.ipc / ample0.ipc;
    EXPECT_GT(gainTight, gainAmple);
}

TEST(Decoupling, FastForwardingHappensAndHelps)
{
    // Programs with short-distance spill/reload pairs fast-forward.
    for (const char *name : {"vortex", "compress", "go"}) {
        auto prog = wl(name, 2);
        SimResult off = run(prog, config::decoupled(3, 2));
        config::MachineConfig cfg = config::decoupled(3, 2);
        cfg.fastForward = true;
        SimResult on = run(prog, cfg);
        EXPECT_GT(on.lvaqFastForwards, 0u) << name;
        EXPECT_GE(on.ipc, off.ipc * 0.995) << name
            << ": fast forwarding should not hurt";
    }
}

TEST(Decoupling, M88ksimGetsNoForwardingBenefit)
{
    // Paper Table 3: m88ksim's save/restore distance exceeds the
    // window, so almost no loads find their value in the LVAQ.
    auto prog = wl("m88ksim", 2);
    config::MachineConfig cfg = config::decoupled(3, 2);
    cfg.fastForward = true;
    SimResult r = run(prog, cfg);
    double fwdFrac =
        static_cast<double>(r.lvaqFastForwards + r.lvaqForwards) /
        static_cast<double>(r.lvaqLoads ? r.lvaqLoads : 1);
    EXPECT_LT(fwdFrac, 0.15);
}

TEST(Decoupling, CombiningReducesPortPressure)
{
    // Paper Fig. 8: two-way combining helps most under (3+1) for
    // call-dense programs.
    for (const char *name : {"vortex", "li"}) {
        auto prog = wl(name, 2);
        config::MachineConfig noComb = config::decoupled(3, 1);
        SimResult off = run(prog, noComb);
        config::MachineConfig comb = config::decoupled(3, 1);
        comb.combining = 2;
        SimResult on = run(prog, comb);
        EXPECT_GT(on.lvaqCombined, 0u) << name;
        EXPECT_GT(on.ipc, off.ipc) << name
            << ": 2-way combining should help under (3+1)";
    }
}

TEST(Decoupling, LvaqSatisfiesManyLoads)
{
    // Paper Section 4.3: 50-90% of LVC accesses are satisfied in the
    // LVAQ before reaching the cache (with both optimizations on).
    auto prog = wl("vortex", 2);
    SimResult r = run(prog, config::decoupledOptimized(3, 2));
    EXPECT_GT(r.lvaqSatisfiedFrac, 0.3);
    EXPECT_LT(r.lvaqSatisfiedFrac, 0.95);
}

TEST(Decoupling, LiLvcReducesL2Traffic)
{
    // Paper Section 4.2.1: li's stack frames conflict with heap data
    // in the unified L1; the LVC removes those conflicts and cuts L2
    // bus traffic noticeably.
    auto prog = wl("li", 4);
    SimResult base = run(prog, config::baseline(3));
    SimResult dec = run(prog, config::decoupled(3, 2));
    EXPECT_LT(dec.l2Accesses, base.l2Accesses);
}

TEST(Decoupling, PredictorClassifierIsAccurateEndToEnd)
{
    auto prog = wl("li", 2);
    config::MachineConfig cfg = config::decoupled(3, 2);
    cfg.classifier = config::ClassifierKind::Predictor;
    SimResult r = run(prog, cfg);
    EXPECT_GT(r.classifierAccuracy, 0.99);
    EXPECT_EQ(r.committed, run(prog, config::baseline(3)).committed);
}

TEST(Decoupling, SpBaseClassifierWorksEndToEnd)
{
    auto prog = wl("vortex", 1);
    config::MachineConfig cfg = config::decoupled(3, 2);
    cfg.classifier = config::ClassifierKind::SpBase;
    SimResult r = run(prog, cfg);
    EXPECT_GT(r.lvcAccesses, 0u);
    // sp/fp-based accesses are all truly local in our generators, but
    // pointer-based stack accesses (none here) would be missed; the
    // heuristic must never be *wrong*, only conservative... except for
    // pointer reads of frames, which vortex-like does not do.
    EXPECT_GT(r.classifierAccuracy, 0.95);
}

TEST(Decoupling, UnlimitedLvcPortsAreNoBetterThanThree)
{
    // Paper Fig. 7/9: three LVC ports are effectively unlimited
    // bandwidth for the local stream. (On the most call-dense
    // workloads a *higher* port count can even lose a little: once
    // the LVAQ stops throttling commit, LSQ stores drain sooner,
    // loads lose their 1-cycle forwards and burst into the L1 ports
    // -- the same store/load interaction class the paper reports for
    // su2cor in Section 4.3. So the claim here is "no better", not
    // "equal".)
    for (const char *name : {"li", "vortex"}) {
        auto prog = wl(name, 2);
        SimResult three =
            run(prog, config::decoupledOptimized(3, 3));
        SimResult sixteen =
            run(prog, config::decoupledOptimized(3, 16));
        EXPECT_LT(sixteen.ipc, three.ipc * 1.03) << name;
    }
}
