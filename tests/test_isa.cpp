/**
 * @file
 * ISA tests: opcode table consistency, encode/decode round-trips over
 * every opcode (parameterized), field limits, register naming,
 * dependency extraction and the disassembler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/annotate.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"
#include "isa/inst.hh"
#include "isa/opcode.hh"
#include "isa/regs.hh"
#include "prog/asm_parser.hh"
#include "util/log.hh"
#include "workloads/common.hh"

using namespace ddsim;
using namespace ddsim::isa;

namespace {

/** Build a representative instruction for an opcode. */
Inst
sampleInst(OpCode op)
{
    const OpInfo &info = opInfo(op);
    Inst i;
    i.op = op;
    switch (info.fmt) {
      case Format::None:
        break;
      case Format::R3:
        i.rd = 3;
        i.rs = 7;
        i.rt = 12;
        break;
      case Format::R2:
        i.rd = 4;
        i.rs = 9;
        break;
      case Format::RShift:
        i.rd = 5;
        i.rs = 6;
        i.imm = 13;
        break;
      case Format::I2:
        i.rt = 8;
        i.rs = 2;
        i.imm = (op == OpCode::ANDI || op == OpCode::ORI ||
                 op == OpCode::XORI)
                    ? 0xbeef
                    : -1234;
        break;
      case Format::I1:
        i.rt = 10;
        i.imm = 0xcafe;
        break;
      case Format::Mem:
        i.rt = 11;
        i.rs = reg::sp;
        i.imm = -44;
        i.localHint = true;
        break;
      case Format::B2:
        i.rs = 14;
        i.rt = 15;
        i.imm = -7;
        break;
      case Format::B1:
        i.rs = 16;
        i.imm = 20;
        break;
      case Format::Jmp:
        i.target = 0x123456;
        break;
      case Format::JmpR:
      case Format::Print:
        i.rs = reg::ra;
        break;
      case Format::JmpLinkR:
        i.rd = reg::ra;
        i.rs = 17;
        break;
    }
    return i;
}

} // namespace

class OpcodeRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(OpcodeRoundTrip, EncodeDecodeIdentity)
{
    OpCode op = static_cast<OpCode>(GetParam());
    Inst original = sampleInst(op);
    std::uint32_t word = encode(original);
    Inst decoded = decode(word);
    EXPECT_EQ(decoded, original) << "opcode " << mnemonic(op);
}

TEST_P(OpcodeRoundTrip, MnemonicParsesBack)
{
    OpCode op = static_cast<OpCode>(GetParam());
    EXPECT_EQ(parseMnemonic(mnemonic(op)), op);
}

TEST_P(OpcodeRoundTrip, DisassemblyNonEmptyAndStartsWithMnemonic)
{
    OpCode op = static_cast<OpCode>(GetParam());
    std::string text = disassemble(sampleInst(op));
    EXPECT_EQ(text.rfind(mnemonic(op), 0), 0u) << text;
}

TEST_P(OpcodeRoundTrip, DisassemblyReassemblesToSameInst)
{
    // The full textual loop: encode a representative instruction,
    // render it, and feed the text back through the AsmParser. Every
    // field — including the local-hint annotation bit — must survive.
    OpCode op = static_cast<OpCode>(GetParam());
    Inst original = sampleInst(op);
    std::string text = disassemble(original);
    prog::Program p =
        prog::assemble("main:\n    " + text + "\n    halt\n");
    EXPECT_EQ(p.fetch(0), original) << text;
}

TEST_P(OpcodeRoundTrip, LocalHintClearSurvivesTextRoundTrip)
{
    // sampleInst sets the hint on memory instructions; pin the
    // unannotated encoding too, since the paper's classifier treats
    // the two cases asymmetrically.
    OpCode op = static_cast<OpCode>(GetParam());
    if (opInfo(op).fmt != Format::Mem)
        return;
    Inst original = sampleInst(op);
    original.localHint = false;
    EXPECT_EQ(decode(encode(original)), original);
    std::string text = disassemble(original);
    EXPECT_EQ(text.find("!local"), std::string::npos) << text;
    prog::Program p =
        prog::assemble("main:\n    " + text + "\n    halt\n");
    EXPECT_EQ(p.fetch(0), original) << text;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::Range(0, NumOpcodesInt));

TEST(AnnotatedRoundTrip, WorkloadsSurviveDisasmReparse)
{
    // The static partitioning pass rewrites hint bits in-place; the
    // result must still be a well-formed program whose full listing
    // disassembles and reparses to the identical text image — hint
    // bits included. The registry generators already emit perfect
    // hints, so strip them first (an unannotated compiler) to force
    // the pass to do real rewriting before the round-trip.
    std::size_t flipped = 0;
    for (const auto &info : workloads::all()) {
        workloads::WorkloadParams params;
        params.scale = 5;
        prog::Program base = info.factory(params);
        for (std::uint32_t i = 0; i < base.textSize(); ++i) {
            Inst inst = base.fetch(i);
            if (opInfo(inst.op).fmt == Format::Mem &&
                inst.localHint) {
                inst.localHint = false;
                base.patch(i, encode(inst));
            }
        }
        analysis::AnnotateStats st;
        prog::Program annotated = analysis::annotateProgram(
            base, analysis::HintPolicy::Speculative, &st);
        flipped += st.changed;

        std::ostringstream os;
        os << "main:\n";
        for (std::uint32_t i = 0; i < annotated.textSize(); ++i)
            os << "    " << disassemble(annotated.fetch(i)) << "\n";
        prog::Program reparsed = prog::assemble(os.str(), info.name);

        ASSERT_EQ(reparsed.textSize(), annotated.textSize())
            << info.name;
        for (std::uint32_t i = 0; i < annotated.textSize(); ++i) {
            ASSERT_EQ(reparsed.fetchRaw(i), annotated.fetchRaw(i))
                << info.name << " @" << i << ": "
                << disassemble(annotated.fetch(i));
        }
    }
    // The pass must have really exercised the hint-bit path: the
    // stripped hints on stack accesses all come back.
    EXPECT_GT(flipped, 0u);
}

TEST(Encode, MemOffsetLimits)
{
    setQuiet(true);
    Inst i;
    i.op = OpCode::LW;
    i.rt = 1;
    i.rs = reg::sp;
    i.imm = MemOffsetMax;
    EXPECT_NO_THROW(encode(i));
    i.imm = MemOffsetMin;
    EXPECT_NO_THROW(encode(i));
    i.imm = MemOffsetMax + 1;
    EXPECT_THROW(encode(i), FatalError);
    i.imm = MemOffsetMin - 1;
    EXPECT_THROW(encode(i), FatalError);
}

TEST(Encode, LocalBitSurvivesRoundTrip)
{
    Inst i;
    i.op = OpCode::SW;
    i.rt = 4;
    i.rs = reg::sp;
    i.imm = 16;
    i.localHint = true;
    Inst d = decode(encode(i));
    EXPECT_TRUE(d.localHint);
    i.localHint = false;
    d = decode(encode(i));
    EXPECT_FALSE(d.localHint);
}

TEST(Encode, LogicalImmediateZeroExtends)
{
    Inst i;
    i.op = OpCode::ORI;
    i.rt = 2;
    i.rs = 2;
    i.imm = 0xffff;
    Inst d = decode(encode(i));
    EXPECT_EQ(d.imm, 0xffff); // not sign-extended
}

TEST(Encode, SignedImmediateSignExtends)
{
    Inst i;
    i.op = OpCode::ADDI;
    i.rt = 2;
    i.rs = 2;
    i.imm = -1;
    Inst d = decode(encode(i));
    EXPECT_EQ(d.imm, -1);
}

TEST(Encode, InvalidOpcodeRejected)
{
    setQuiet(true);
    std::uint32_t word = 63u << 26; // beyond NumOpcodes
    EXPECT_THROW(decode(word), FatalError);
}

TEST(Regs, NamesAndParsing)
{
    EXPECT_STREQ(gprName(reg::sp), "sp");
    EXPECT_STREQ(gprName(reg::zero), "zero");
    RegId idx;
    bool fpr;
    EXPECT_TRUE(parseRegName("sp", idx, fpr));
    EXPECT_EQ(idx, reg::sp);
    EXPECT_FALSE(fpr);
    EXPECT_TRUE(parseRegName("$t3", idx, fpr));
    EXPECT_EQ(idx, reg::t3);
    EXPECT_TRUE(parseRegName("f12", idx, fpr));
    EXPECT_EQ(idx, 12);
    EXPECT_TRUE(fpr);
    EXPECT_TRUE(parseRegName("r31", idx, fpr));
    EXPECT_EQ(idx, 31);
    EXPECT_FALSE(parseRegName("bogus", idx, fpr));
    EXPECT_FALSE(parseRegName("r32", idx, fpr));
}

TEST(Regs, StackBaseDetection)
{
    EXPECT_TRUE(isStackBase(reg::sp));
    EXPECT_TRUE(isStackBase(reg::fp));
    EXPECT_FALSE(isStackBase(reg::gp));
    EXPECT_FALSE(isStackBase(reg::t0));
}

TEST(Deps, AluSourcesAndDest)
{
    Inst i;
    i.op = OpCode::ADD;
    i.rd = 3;
    i.rs = 4;
    i.rt = 5;
    RegRef srcs[2];
    EXPECT_EQ(srcRegs(i, srcs), 2);
    EXPECT_EQ(srcs[0], gprRef(4));
    EXPECT_EQ(srcs[1], gprRef(5));
    EXPECT_EQ(destReg(i), gprRef(3));
}

TEST(Deps, ZeroDestinationIsDiscarded)
{
    Inst i;
    i.op = OpCode::ADD;
    i.rd = reg::zero;
    i.rs = 1;
    i.rt = 2;
    EXPECT_FALSE(destReg(i).valid());
}

TEST(Deps, StoreHasBaseThenData)
{
    Inst i;
    i.op = OpCode::SW;
    i.rt = 9;          // data
    i.rs = reg::sp;    // base
    RegRef srcs[2];
    EXPECT_EQ(srcRegs(i, srcs), 2);
    EXPECT_EQ(srcs[0], gprRef(reg::sp));
    EXPECT_EQ(srcs[1], gprRef(9));
    EXPECT_FALSE(destReg(i).valid());
}

TEST(Deps, FpStoreDataIsFpr)
{
    Inst i;
    i.op = OpCode::SD;
    i.rt = 6;
    i.rs = reg::sp;
    RegRef srcs[2];
    EXPECT_EQ(srcRegs(i, srcs), 2);
    EXPECT_EQ(srcs[1], fprRef(6));
}

TEST(Deps, LoadWritesItsFile)
{
    Inst lw;
    lw.op = OpCode::LW;
    lw.rt = 7;
    lw.rs = reg::sp;
    EXPECT_EQ(destReg(lw), gprRef(7));

    Inst ld;
    ld.op = OpCode::LD;
    ld.rt = 7;
    ld.rs = reg::sp;
    EXPECT_EQ(destReg(ld), fprRef(7));
}

TEST(Deps, JalWritesRa)
{
    Inst i;
    i.op = OpCode::JAL;
    i.target = 100;
    EXPECT_EQ(destReg(i), gprRef(reg::ra));
}

TEST(Deps, FpCompareWritesGprFromFprSources)
{
    Inst i;
    i.op = OpCode::C_LT_D;
    i.rd = 3;
    i.rs = 8;
    i.rt = 9;
    EXPECT_EQ(destReg(i), gprRef(3));
    RegRef srcs[2];
    EXPECT_EQ(srcRegs(i, srcs), 2);
    EXPECT_EQ(srcs[0], fprRef(8));
    EXPECT_EQ(srcs[1], fprRef(9));
}

TEST(Deps, CvtCrossesFiles)
{
    Inst dw;
    dw.op = OpCode::CVT_D_W;
    dw.rd = 2;
    dw.rs = 5;
    EXPECT_EQ(destReg(dw), fprRef(2));
    RegRef srcs[2];
    EXPECT_EQ(srcRegs(dw, srcs), 1);
    EXPECT_EQ(srcs[0], gprRef(5));

    Inst wd;
    wd.op = OpCode::CVT_W_D;
    wd.rd = 2;
    wd.rs = 5;
    EXPECT_EQ(destReg(wd), gprRef(2));
    EXPECT_EQ(srcRegs(wd, srcs), 1);
    EXPECT_EQ(srcs[0], fprRef(5));
}

TEST(Deps, ReturnDetection)
{
    Inst i;
    i.op = OpCode::JR;
    i.rs = reg::ra;
    EXPECT_TRUE(isReturn(i));
    i.rs = reg::t0;
    EXPECT_FALSE(isReturn(i));
}

TEST(OpInfoTable, LatenciesMatchR10000)
{
    EXPECT_EQ(opInfo(OpCode::ADD).latency, 1);
    EXPECT_EQ(opInfo(OpCode::MUL).latency, 5);
    EXPECT_EQ(opInfo(OpCode::DIV).latency, 34);
    EXPECT_FALSE(opInfo(OpCode::DIV).pipelined);
    EXPECT_EQ(opInfo(OpCode::ADD_D).latency, 2);
    EXPECT_EQ(opInfo(OpCode::MUL_D).latency, 2);
    EXPECT_EQ(opInfo(OpCode::DIV_D).latency, 19);
    EXPECT_FALSE(opInfo(OpCode::DIV_D).pipelined);
}

TEST(OpInfoTable, AccessSizes)
{
    EXPECT_EQ(opInfo(OpCode::LW).accessSize, 4);
    EXPECT_EQ(opInfo(OpCode::LB).accessSize, 1);
    EXPECT_EQ(opInfo(OpCode::SB).accessSize, 1);
    EXPECT_EQ(opInfo(OpCode::LD).accessSize, 8);
    EXPECT_EQ(opInfo(OpCode::SD).accessSize, 8);
    EXPECT_EQ(opInfo(OpCode::ADD).accessSize, 0);
}

TEST(OpInfoTable, ClassPredicates)
{
    EXPECT_TRUE(isLoad(OpCode::LW));
    EXPECT_TRUE(isStore(OpCode::SW));
    EXPECT_TRUE(isMem(OpCode::LD));
    EXPECT_FALSE(isMem(OpCode::ADD));
    EXPECT_TRUE(isCondBranch(OpCode::BEQ));
    EXPECT_TRUE(isUncondJump(OpCode::J));
    EXPECT_TRUE(isCall(OpCode::JAL));
    EXPECT_TRUE(isCall(OpCode::JALR));
    EXPECT_FALSE(isCall(OpCode::JR));
    EXPECT_TRUE(isControl(OpCode::BNE));
    EXPECT_TRUE(isControl(OpCode::JR));
}
