/**
 * @file
 * Golden cycle-accurate micro-tests: tiny kernels whose *incremental*
 * cost pins the timing semantics exactly — operation latencies,
 * load-to-use time, forwarding latency, width limits. Differences
 * between two run lengths cancel the pipeline fill/drain constants,
 * so these assertions are exact, not banded.
 */

#include <gtest/gtest.h>

#include "config/presets.hh"
#include "cpu/pipeline.hh"
#include "prog/builder.hh"
#include "sim/runner.hh"
#include "stats/group.hh"
#include "vm/executor.hh"
#include "workloads/common.hh"

using namespace ddsim;
using namespace ddsim::prog;
namespace reg = ddsim::isa::reg;

namespace {

std::uint64_t
cyclesOf(Program &p, const config::MachineConfig &cfg)
{
    stats::Group root(nullptr, "");
    vm::Executor exec(p);
    cpu::Pipeline pipe(&root, cfg, exec);
    pipe.run();
    return pipe.numCycles.value();
}

/** Cycles added by `extra` repetitions of an emitted unit. */
template <typename EmitUnit>
std::uint64_t
incrementalCost(EmitUnit emit, int base, int extra,
                const config::MachineConfig &cfg)
{
    ProgramBuilder b1("base");
    b1.addi(reg::sp, reg::sp, -64);
    for (int i = 0; i < base; ++i)
        emit(b1);
    b1.halt();
    Program p1 = b1.finish();

    ProgramBuilder b2("long");
    b2.addi(reg::sp, reg::sp, -64);
    for (int i = 0; i < base + extra; ++i)
        emit(b2);
    b2.halt();
    Program p2 = b2.finish();

    std::uint64_t c1 = cyclesOf(p1, cfg);
    std::uint64_t c2 = cyclesOf(p2, cfg);
    EXPECT_GE(c2, c1);
    return c2 - c1;
}

} // namespace

TEST(TimingGolden, DependentAddCostsOneCyclePerLink)
{
    auto unit = [](ProgramBuilder &b) { b.addi(reg::t0, reg::t0, 1); };
    std::uint64_t d =
        incrementalCost(unit, 64, 100, config::baseline(2));
    EXPECT_EQ(d, 100u);
}

TEST(TimingGolden, DependentMulCostsFiveCyclesPerLink)
{
    auto unit = [](ProgramBuilder &b) {
        b.mul(reg::t0, reg::t0, reg::t0);
    };
    std::uint64_t d =
        incrementalCost(unit, 16, 50, config::baseline(2));
    EXPECT_EQ(d, 50u * 5);
}

TEST(TimingGolden, DependentDivCosts34CyclesPerLink)
{
    auto unit = [](ProgramBuilder &b) {
        b.div(reg::t0, reg::t0, reg::t0);
    };
    std::uint64_t d = incrementalCost(unit, 4, 10, config::baseline(2));
    EXPECT_EQ(d, 10u * 34);
}

TEST(TimingGolden, DependentFpAddCostsTwoCyclesPerLink)
{
    auto unit = [](ProgramBuilder &b) { b.addD(1, 1, 1); };
    std::uint64_t d =
        incrementalCost(unit, 16, 50, config::baseline(2));
    EXPECT_EQ(d, 50u * 2);
}

TEST(TimingGolden, DependentFpDivCosts19CyclesPerLink)
{
    auto unit = [](ProgramBuilder &b) { b.divD(1, 1, 1); };
    std::uint64_t d = incrementalCost(unit, 4, 10, config::baseline(2));
    EXPECT_EQ(d, 10u * 19);
}

TEST(TimingGolden, IndependentAddsFillTheWidth)
{
    // 16-wide with 16 int ALUs: 160 independent adds = 10 cycles.
    auto unit = [](ProgramBuilder &b) {
        b.addi(reg::t0, reg::zero, 1);
    };
    std::uint64_t d =
        incrementalCost(unit, 160, 160, config::baseline(2));
    EXPECT_EQ(d, 10u);
}

TEST(TimingGolden, LoadToUseOnL1HitIsAgenPlusHit)
{
    // Pointer-chase of always-zero values: each link costs
    // AGU issue (1) + 2-cycle hit + 1 cycle to issue the dependent
    // op... measured as the exact per-link constant (warm cache).
    auto unit = [](ProgramBuilder &b) {
        b.lw(reg::t1, 0, reg::t0);      // loads 0 from sp-region? no:
        b.add(reg::t0, reg::t0, reg::t1); // t0 unchanged (t1 == 0)
    };
    // Prime t0 with a heap address via the first iterations; the
    // incremental cost cancels the cold misses.
    auto mk = [&](int n) {
        ProgramBuilder b("chase");
        Addr buf = b.dataWords(16);
        b.la(reg::t0, buf);
        for (int i = 0; i < n; ++i)
            unit(b);
        b.halt();
        return b.finish();
    };
    Program p1 = mk(32), p2 = mk(132);
    std::uint64_t d =
        cyclesOf(p2, config::baseline(2)) -
        cyclesOf(p1, config::baseline(2));
    // Per link: load addr gen (1) + hit (2) = ready 3 cycles after
    // the chain value; the add issues the cycle the value is ready.
    // Empirically the steady-state link cost is 4 cycles (AGU issue
    // cycle + 2-cycle hit + 1-cycle add).
    EXPECT_EQ(d, 100u * 4);
}

TEST(TimingGolden, LvcHitSavesOneCyclePerLink)
{
    // The same chase through the 1-cycle LVC: one cycle less per link.
    auto mk = [&](int n) {
        ProgramBuilder b("chase");
        b.addi(reg::sp, reg::sp, -64);
        b.move(reg::t0, reg::sp);
        for (int i = 0; i < n; ++i) {
            b.lw(reg::t1, 0, reg::t0, true); // stack region, zero
            b.add(reg::t0, reg::t0, reg::t1);
        }
        b.halt();
        return b.finish();
    };
    Program p1 = mk(32), p2 = mk(132);
    config::MachineConfig dec = config::decoupled(2, 2);
    std::uint64_t d = cyclesOf(p2, dec) - cyclesOf(p1, dec);
    EXPECT_EQ(d, 100u * 3);
}

TEST(TimingGolden, ForwardingLatencyIsOneCycle)
{
    // store -> load -> add chain, all to the same frame slot: the
    // load is satisfied by the 1-cycle queue forward, so each link
    // costs store-data (0, ready) + forward (1) + add (1) + store (1).
    auto mk = [&](int n) {
        ProgramBuilder b("fwd");
        b.addi(reg::sp, reg::sp, -16);
        b.li(reg::t0, 1);
        for (int i = 0; i < n; ++i) {
            b.sw(reg::t0, 0, reg::sp, true);
            b.lw(reg::t1, 0, reg::sp, true);
            b.add(reg::t0, reg::t1, reg::t0);
        }
        b.halt();
        return b.finish();
    };
    Program p1 = mk(16), p2 = mk(116);
    config::MachineConfig cfg = config::baseline(4);
    std::uint64_t d = cyclesOf(p2, cfg) - cyclesOf(p1, cfg);
    // Per link: the store's data arrives (t0), the dependent load
    // forwards one cycle later, the add consumes it the next cycle.
    EXPECT_EQ(d, 100u * 2);
}

TEST(TimingGolden, CommitWidthBoundsThroughputExactly)
{
    auto unit = [](ProgramBuilder &b) {
        b.addi(reg::t0, reg::zero, 1);
    };
    config::MachineConfig cfg = config::baseline(2);
    cfg.commitWidth = 4;
    std::uint64_t d = incrementalCost(unit, 160, 400, cfg);
    EXPECT_EQ(d, 100u); // 400 insts / 4 per cycle
}

TEST(TimingGolden, SinglePortSerializesIndependentLoads)
{
    // Independent loads to distinct lines (no combining possible).
    auto mk = [&](int n) {
        ProgramBuilder b("ldburst");
        Addr buf = b.dataWords(256);
        b.la(reg::t0, buf);
        int off = 0;
        for (int i = 0; i < n; ++i)
            b.lw(static_cast<RegId>(reg::t1 + (i % 4)),
                 ((off++) % 8) * 64, reg::t0);
        b.halt();
        return b.finish();
    };
    // Both runs must be long enough that the single port (not the
    // cold misses) is the binding resource.
    Program p1 = mk(132), p2 = mk(332);
    std::uint64_t d = cyclesOf(p2, config::baseline(1)) -
                      cyclesOf(p1, config::baseline(1));
    EXPECT_EQ(d, 200u); // one load per cycle through one port
}

TEST(TimingGolden, StoresThroughPortsAtCommit)
{
    // Independent stores: bound by the single cache port, one per
    // cycle at commit.
    auto mk = [&](int n) {
        ProgramBuilder b("stburst");
        Addr buf = b.dataWords(256);
        b.la(reg::t0, buf);
        for (int i = 0; i < n; ++i)
            b.sw(reg::zero, (i % 8) * 64, reg::t0);
        b.halt();
        return b.finish();
    };
    Program p1 = mk(32), p2 = mk(232);
    std::uint64_t d = cyclesOf(p2, config::baseline(1)) -
                      cyclesOf(p1, config::baseline(1));
    EXPECT_EQ(d, 200u);
}

// ---- Whole-workload golden runs ----
//
// Two full workloads with every pipeline feature engaged — the
// decoupled (3+2) machine with fast data forwarding and two-way
// access combining — pinned to exact cycle counts. Any change that
// perturbs timing anywhere in the machine (including unintended
// cross-run state introduced by a concurrency refactor) trips these
// immediately. The counts were measured on the deterministic
// simulator; re-pin them only for an intentional timing change.

namespace {

ddsim::sim::SimResult
goldenWorkloadRun(const char *name)
{
    workloads::WorkloadParams p;
    p.scale = workloads::find(name)->defaultScale / 8;
    prog::Program prog = workloads::build(name, p);
    return ddsim::sim::run(prog, config::decoupledOptimized(3, 2));
}

} // namespace

TEST(TimingGolden, VortexLocalHeavyPinnedUnderOptimized32)
{
    // 147.vortex-like: the paper's most local-reference-heavy
    // workload, so it exercises the LVC/LVAQ paths hardest.
    ddsim::sim::SimResult r = goldenWorkloadRun("vortex");
    EXPECT_EQ(r.committed, 36964u);
    EXPECT_EQ(r.cycles, 18289u);
    EXPECT_EQ(r.lvaqFastForwards, 1320u); // fast forwarding engaged
    EXPECT_EQ(r.lvaqCombined, 4022u);     // 2-way combining engaged
}

TEST(TimingGolden, SwimFpPinnedUnderOptimized32)
{
    // 102.swim-like: FP streaming with few local accesses — the
    // other end of the workload spectrum.
    ddsim::sim::SimResult r = goldenWorkloadRun("swim");
    EXPECT_EQ(r.committed, 142721u);
    EXPECT_EQ(r.cycles, 32291u);
    EXPECT_EQ(r.lvaqFastForwards, 1872u);
    EXPECT_EQ(r.lvaqCombined, 427u);
}

TEST(TimingGolden, FastForwardBeatsNormalForwardUnderPortPressure)
{
    // A spill/reload pair competing with a stream of port-hogging
    // loads: with fast forwarding the reload bypasses the ports.
    auto mk = [&](bool fastFwd) {
        ProgramBuilder b("ffwd");
        b.addi(reg::sp, reg::sp, -32);
        b.la(reg::t0, layout::HeapBase);
        b.li(reg::s0, 200);
        Label loop = b.here();
        b.sw(reg::s0, 0, reg::sp, true);   // spill
        b.lw(reg::t2, 0, reg::sp, true);   // reload (fast-fwd food)
        b.sw(reg::t2, 4, reg::sp, true);   // dependent local store
        b.lw(reg::t3, 8, reg::sp, true);   // port traffic
        b.lw(reg::t4, 12, reg::sp, true);
        b.addi(reg::s0, reg::s0, -1);
        b.bgtz(reg::s0, loop);
        b.halt();
        Program p = b.finish();
        config::MachineConfig cfg = config::decoupled(3, 1);
        cfg.fastForward = fastFwd;
        return cyclesOf(p, cfg);
    };
    std::uint64_t off = mk(false);
    std::uint64_t on = mk(true);
    EXPECT_LT(on, off);
}
