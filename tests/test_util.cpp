/**
 * @file
 * Unit tests for the util module: logging, RNG, string helpers,
 * address-space layout.
 */

#include <gtest/gtest.h>

#include "util/log.hh"
#include "util/rng.hh"
#include "util/str.hh"
#include "util/types.hh"

using namespace ddsim;

TEST(Log, FormatProducesPrintfOutput)
{
    EXPECT_EQ(format("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(format("%08x", 0xabcu), "00000abc");
}

TEST(Log, FatalThrowsFatalError)
{
    setQuiet(true);
    EXPECT_THROW(fatal("bad config %d", 1), FatalError);
}

TEST(Log, PanicThrowsPanicError)
{
    setQuiet(true);
    EXPECT_THROW(panic("bug %d", 2), PanicError);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    // Mean should be near 0.5.
    EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng r(11);
    std::vector<double> w = {0.0, 1.0, 0.0};
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.weighted(w), 1u);
}

TEST(Rng, GeometricRespectsBounds)
{
    Rng r(13);
    for (int i = 0; i < 500; ++i) {
        int v = r.geometric(2, 8, 0.5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 8);
    }
}

TEST(Str, TrimStripsWhitespace)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("\t\n"), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Str, SplitPreservesEmptyFields)
{
    auto v = split("a,,b", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "");
    EXPECT_EQ(v[2], "b");
}

TEST(Str, SplitWsDropsEmptyFields)
{
    auto v = splitWs("  a \t b  c ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2], "c");
}

TEST(Str, ParseIntHandlesHexAndSign)
{
    std::int64_t v;
    EXPECT_TRUE(parseInt("0x10", v));
    EXPECT_EQ(v, 16);
    EXPECT_TRUE(parseInt("-42", v));
    EXPECT_EQ(v, -42);
    EXPECT_FALSE(parseInt("12abc", v));
    EXPECT_FALSE(parseInt("", v));
}

TEST(Str, ParseSizeHandlesSuffixes)
{
    std::uint64_t v;
    EXPECT_TRUE(parseSize("2K", v));
    EXPECT_EQ(v, 2048u);
    EXPECT_TRUE(parseSize("1M", v));
    EXPECT_EQ(v, 1024u * 1024u);
    EXPECT_TRUE(parseSize("512", v));
    EXPECT_EQ(v, 512u);
    EXPECT_FALSE(parseSize("x", v));
}

TEST(Layout, StackRegionDetection)
{
    EXPECT_TRUE(layout::isStackAddr(layout::StackBase));
    EXPECT_TRUE(layout::isStackAddr(layout::StackBase - 4096));
    EXPECT_FALSE(layout::isStackAddr(layout::HeapBase));
    EXPECT_FALSE(layout::isStackAddr(layout::DataBase));
    EXPECT_FALSE(layout::isStackAddr(layout::TextBase));
}
