/**
 * @file
 * Text assembler tests: syntax coverage, labels, data directives,
 * pseudo-instructions, error reporting, and a functional round-trip
 * (assemble -> execute) plus disassembler round-trips.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "prog/asm_parser.hh"
#include "util/log.hh"
#include "vm/executor.hh"

using namespace ddsim;
using namespace ddsim::prog;
namespace reg = ddsim::isa::reg;
using ddsim::isa::OpCode;

TEST(Asm, MinimalProgram)
{
    Program p = assemble(R"(
        main:
            addi t0, zero, 5
            print t0
            halt
    )");
    EXPECT_EQ(p.textSize(), 3u);
    EXPECT_EQ(p.entry(), 0u);
}

TEST(Asm, CommentsAndBlankLines)
{
    Program p = assemble(R"(
        # leading comment

        main:           # trailing comment
            halt        # done
    )");
    EXPECT_EQ(p.textSize(), 1u);
}

TEST(Asm, MemoryOperandWithLocalMarker)
{
    Program p = assemble(R"(
        main:
            sw t0, -8(sp) !local
            lw t1, 16(gp)
            halt
    )");
    auto sw = p.fetch(0);
    EXPECT_EQ(sw.op, OpCode::SW);
    EXPECT_EQ(sw.imm, -8);
    EXPECT_EQ(sw.rs, reg::sp);
    EXPECT_TRUE(sw.localHint);
    auto lw = p.fetch(1);
    EXPECT_FALSE(lw.localHint);
    EXPECT_EQ(lw.rs, reg::gp);
}

TEST(Asm, BranchAndJumpLabels)
{
    Program p = assemble(R"(
        main:
            addi t0, zero, 3
        loop:
            addi t0, t0, -1
            bgtz t0, loop
            j end
            nop
        end:
            halt
    )");
    EXPECT_EQ(p.fetch(2).imm, -2);
    EXPECT_EQ(p.fetch(3).target, 5u);
}

TEST(Asm, DataDirectivesAndLa)
{
    Program p = assemble(R"(
        .data
        counter:
            .word 41
        buf:
            .space 8
        pi:
            .align 8
            .double 3.5
        .text
        main:
            la t0, counter
            lw t1, 0(t0)
            addi t1, t1, 1
            print t1
            halt
    )");
    vm::Executor e(p);
    e.run(100);
    ASSERT_TRUE(e.halted());
    ASSERT_EQ(e.printed().size(), 1u);
    EXPECT_EQ(e.printed()[0], 42u);
}

TEST(Asm, EntryDirective)
{
    Program p = assemble(R"(
        .entry start
        other:
            nop
        start:
            halt
    )");
    EXPECT_EQ(p.entry(), 1u);
}

TEST(Asm, FpInstructions)
{
    Program p = assemble(R"(
        .data
        x:  .double 2.0
        .text
        main:
            la t0, x
            ld f1, 0(t0)
            mul.d f2, f1, f1
            cvt.w.d t1, f2
            print t1
            halt
    )");
    vm::Executor e(p);
    e.run(100);
    ASSERT_TRUE(e.halted());
    EXPECT_EQ(e.printed()[0], 4u);
}

TEST(Asm, PseudoInstructions)
{
    Program p = assemble(R"(
        main:
            li t0, 0x12345678
            move t1, t0
            print t1
            halt
    )");
    vm::Executor e(p);
    e.run(100);
    EXPECT_EQ(e.printed()[0], 0x12345678u);
}

TEST(Asm, FunctionCallRoundTrip)
{
    Program p = assemble(R"(
        main:
            addi a0, zero, 20
            addi a1, zero, 22
            jal add2
            print v0
            halt
        add2:
            addi sp, sp, -8
            sw a0, 0(sp) !local
            sw a1, 4(sp) !local
            lw t0, 0(sp) !local
            lw t1, 4(sp) !local
            add v0, t0, t1
            addi sp, sp, 8
            ret
    )");
    vm::Executor e(p);
    e.run(100);
    ASSERT_TRUE(e.halted());
    EXPECT_EQ(e.printed()[0], 42u);
}

TEST(Asm, ErrorsAreLineNumbered)
{
    setQuiet(true);
    try {
        assemble("main:\n    bogus t0, t1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

namespace {

/** Assemble bad source; return the FatalError message. */
std::string
assembleError(const std::string &source)
{
    setQuiet(true);
    try {
        assemble(source);
    } catch (const FatalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected FatalError for:\n" << source;
    return "";
}

} // namespace

TEST(Asm, BadRegisterNamesTheTokenAndLine)
{
    std::string msg = assembleError("main:\n    add t0, r99, t1\n");
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("r99"), std::string::npos) << msg;

    msg = assembleError("main:\n    lw t0, 4(f2)\n");
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("f2"), std::string::npos) << msg;
}

TEST(Asm, MemOffsetOverflowIsLineNumbered)
{
    // 15-bit signed field: [-16384, 16383] (paper footnote 6).
    std::string msg = assembleError("main:\n\n    lw t0, 16384(sp)\n");
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("16384"), std::string::npos) << msg;

    msg = assembleError("main:\n    sw t0, -16385(sp)\n");
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;

    // The extremes themselves still assemble.
    Program p = assemble(
        "main:\n    lw t0, 16383(sp)\n    sw t0, -16384(sp)\n    halt\n");
    EXPECT_EQ(p.fetch(0).imm, 16383);
    EXPECT_EQ(p.fetch(1).imm, -16384);
}

TEST(Asm, UndefinedLabelReportsFirstUseLine)
{
    std::string msg =
        assembleError("main:\n    beq t0, t1, nowhere\n    halt\n");
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nowhere"), std::string::npos) << msg;
}

TEST(Asm, DoubleBoundLabelReportsBothLines)
{
    std::string msg = assembleError("main:\n    halt\nmain:\n    halt\n");
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
}

TEST(Asm, EntryDirectiveLineInMissingEntryError)
{
    std::string msg = assembleError(".entry start\nmain:\n    halt\n");
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("start"), std::string::npos) << msg;
}

TEST(Asm, ImmediateOverflowIsLineNumbered)
{
    // addi's 16-bit field is checked at encode time; the parser must
    // still attach the source line.
    std::string msg = assembleError("main:\n    addi t0, zero, 70000\n");
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(Asm, UnknownDirectiveFails)
{
    setQuiet(true);
    EXPECT_THROW(assemble(".bogus 5\nmain:\n halt\n"), FatalError);
}

TEST(Asm, MissingEntryFails)
{
    setQuiet(true);
    EXPECT_THROW(assemble("notmain:\n halt\n"), FatalError);
}

TEST(Asm, WrongOperandCountFails)
{
    setQuiet(true);
    EXPECT_THROW(assemble("main:\n add t0, t1\n"), FatalError);
}

TEST(Asm, InstructionInDataFails)
{
    setQuiet(true);
    EXPECT_THROW(assemble(".data\n add t0, t1, t2\n"), FatalError);
}

TEST(Asm, NumericBranchAndJumpTargets)
{
    // The disassembler emits raw offsets/indices; the parser must
    // accept them back.
    Program p = assemble(R"(
        main:
            bne t0, t1, -1
            blez t2, 3
            j 0
            jal 2
            halt
    )");
    EXPECT_EQ(p.fetch(0).imm, -1);
    EXPECT_EQ(p.fetch(1).imm, 3);
    EXPECT_EQ(p.fetch(2).target, 0u);
    EXPECT_EQ(p.fetch(3).target, 2u);
}

TEST(Asm, FullProgramDisassembleRoundTrip)
{
    // A program with control flow round-trips exactly through
    // disassembly.
    Program p1 = assemble(R"(
        main:
            addi t0, zero, 3
        loop:
            sw t0, 0(sp) !local
            lw t1, 0(sp) !local
            addi t0, t0, -1
            bgtz t0, loop
            jal fn
            halt
        fn:
            jr ra
    )");
    std::string text = "main:\n";
    for (std::uint32_t i = 0; i < p1.textSize(); ++i)
        text += "    " + isa::disassemble(p1.fetch(i)) + "\n";
    Program p2 = assemble(text);
    ASSERT_EQ(p2.textSize(), p1.textSize());
    for (std::uint32_t i = 0; i < p1.textSize(); ++i)
        EXPECT_EQ(p2.fetchRaw(i), p1.fetchRaw(i)) << "at " << i;
}

TEST(Asm, DisassembleReassembleRoundTrip)
{
    // Disassemble a small program, reassemble it, and compare words.
    Program p1 = assemble(R"(
        main:
            addi t0, zero, 10
            sw t0, 4(sp) !local
            lw t1, 4(sp) !local
            add.d f3, f1, f2
            c.lt.d t2, f1, f2
            sll t3, t1, 4
            halt
    )");
    std::string text = "main:\n";
    for (std::uint32_t i = 0; i < p1.textSize(); ++i)
        text += "    " + isa::disassemble(p1.fetch(i)) + "\n";
    Program p2 = assemble(text);
    ASSERT_EQ(p2.textSize(), p1.textSize());
    for (std::uint32_t i = 0; i < p1.textSize(); ++i)
        EXPECT_EQ(p2.fetchRaw(i), p1.fetchRaw(i)) << "at " << i;
}
