/**
 * @file
 * MSHR file tests: merging, expiry, and the structural-hazard
 * push-back when all registers are busy.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

using namespace ddsim;
using namespace ddsim::mem;

TEST(Mshr, NoOutstandingInitially)
{
    MshrFile m(4);
    EXPECT_EQ(m.outstandingFill(0x100, 0), 0u);
    EXPECT_EQ(m.busy(0), 0);
}

TEST(Mshr, TracksOutstandingFill)
{
    MshrFile m(4);
    m.allocate(0x100, 10, 60);
    EXPECT_EQ(m.outstandingFill(0x100, 20), 60u);
    EXPECT_EQ(m.outstandingFill(0x200, 20), 0u);
    EXPECT_EQ(m.busy(20), 1);
}

TEST(Mshr, ExpiresCompletedFills)
{
    MshrFile m(4);
    m.allocate(0x100, 0, 50);
    EXPECT_EQ(m.outstandingFill(0x100, 50), 0u); // completed at 50
    EXPECT_EQ(m.busy(50), 0);
}

TEST(Mshr, DuplicateLineCoalescesToEarlierFill)
{
    MshrFile m(4);
    m.allocate(0x100, 0, 50);
    // A second miss on the same line merges into the in-flight fill:
    // it completes when that fill does, never later. (The old
    // overwrite pushed the line's completion back to 120.)
    EXPECT_EQ(m.allocate(0x100, 10, 120), 50u);
    EXPECT_EQ(m.outstandingFill(0x100, 20), 50u);
    EXPECT_EQ(m.busy(20), 1);
}

TEST(Mshr, DuplicateLineChargesNoCapacityHazard)
{
    MshrFile m(2);
    m.allocate(0x100, 0, 100);
    m.allocate(0x200, 0, 80);
    // The file is full, but a repeat miss on a tracked line coalesces
    // instead of competing for a free register.
    EXPECT_EQ(m.allocate(0x100, 0, 140), 100u);
    EXPECT_EQ(m.busy(0), 2);
}

TEST(Mshr, FullFilePushesBackCompletion)
{
    MshrFile m(2);
    m.allocate(0x100, 0, 100);
    m.allocate(0x200, 0, 80);
    // Third miss at t=0 must wait for the earliest fill (t=80).
    Cycle c = m.allocate(0x300, 0, 60);
    EXPECT_EQ(c, 60u + 80u);
    EXPECT_LE(m.busy(0), 2);
}

TEST(Mshr, CapacityRespectedOverTime)
{
    MshrFile m(2);
    m.allocate(0x100, 0, 30);
    m.allocate(0x200, 10, 40);
    // At t=35 the first has expired; no push-back needed.
    Cycle c = m.allocate(0x300, 35, 90);
    EXPECT_EQ(c, 90u);
}
