/**
 * @file
 * Unit tests for the stats package: scalars, formulas, histograms,
 * groups, and text/CSV formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/formatter.hh"
#include "stats/group.hh"
#include "stats/histogram.hh"
#include "stats/stat.hh"

using namespace ddsim;
using namespace ddsim::stats;

TEST(Scalar, CountsAndResets)
{
    Group root(nullptr, "");
    Scalar s(&root, "s", "test");
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);
    EXPECT_EQ(s.report(), 5.0);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
    EXPECT_TRUE(s.zero());
}

TEST(Formula, ComputesOnDemand)
{
    Group root(nullptr, "");
    Scalar a(&root, "a", ""), b(&root, "b", "");
    Formula f(&root, "ratio", "", [&] {
        return safeRatio(a.report(), b.report());
    });
    EXPECT_EQ(f.report(), 0.0); // 0/0 -> 0
    a += 3;
    b += 4;
    EXPECT_DOUBLE_EQ(f.report(), 0.75);
}

TEST(Histogram, BucketsAndOverflow)
{
    Group root(nullptr, "");
    Histogram h(&root, "h", "", 4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40);   // overflow
    h.sample(1000); // overflow
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 1000u);
}

TEST(Histogram, MeanAndPercentile)
{
    Group root(nullptr, "");
    Histogram h(&root, "h", "", 100, 1);
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v % 100);
    EXPECT_NEAR(h.mean(), 49.5, 0.6);
    EXPECT_LE(h.percentile(0.5), 55u);
    EXPECT_GE(h.percentile(0.99), 95u);
}

TEST(Histogram, FractionBetween)
{
    Group root(nullptr, "");
    Histogram h(&root, "h", "", 10, 1);
    for (int i = 0; i < 10; ++i)
        h.sample(static_cast<std::uint64_t>(i));
    EXPECT_NEAR(h.fractionBetween(0, 4), 0.5, 1e-9);
    EXPECT_NEAR(h.fractionBetween(0, 9), 1.0, 1e-9);
}

TEST(Histogram, PercentileUsesCeilingRank)
{
    Group root(nullptr, "");
    Histogram h(&root, "h", "", 10, 1);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    // The median of {1,2,3} needs ceil(0.5*3) = 2 samples at or below
    // it. Truncation needed only 1 and reported the minimum.
    EXPECT_EQ(h.percentile(0.5), 2u);
    EXPECT_EQ(h.percentile(1.0), 3u);
    // A tiny fraction still needs at least one sample; with empty
    // leading buckets the old code stopped in bucket 0 and reported 0.
    EXPECT_EQ(h.percentile(0.01), 1u);
}

TEST(Histogram, PercentileClampsToObservedMax)
{
    Group root(nullptr, "");
    Histogram h(&root, "h", "", 4, 10);
    h.sample(3);
    // One sample of value 3 lands in bucket [0, 9]; every percentile
    // of this distribution is 3, not the bucket bound 9.
    EXPECT_EQ(h.percentile(0.5), 3u);
    h.sample(1000); // overflow
    // The upper half of the mass is in the overflow bucket, whose
    // only known value is the running maximum.
    EXPECT_EQ(h.percentile(0.99), 1000u);
}

TEST(Histogram, FractionBetweenPartialBuckets)
{
    Group root(nullptr, "");
    Histogram h(&root, "h", "", 4, 10);
    for (std::uint64_t v = 0; v < 20; ++v)
        h.sample(v);
    // [0, 4] covers half of bucket [0, 9]: proportionally 5 of the 10
    // samples there. The old all-or-nothing rule reported 0.
    EXPECT_NEAR(h.fractionBetween(0, 4), 0.25, 1e-9);
    EXPECT_NEAR(h.fractionBetween(0, 14), 0.75, 1e-9);
    EXPECT_NEAR(h.fractionBetween(5, 14), 0.5, 1e-9);
    EXPECT_NEAR(h.fractionBetween(0, 19), 1.0, 1e-9);
}

TEST(Histogram, FractionBetweenOverflowInDenominator)
{
    Group root(nullptr, "");
    Histogram h(&root, "h", "", 4, 10);
    h.sample(5);
    h.sample(15);
    h.sample(100); // overflow
    h.sample(200); // overflow
    // Overflow samples always count toward the denominator...
    EXPECT_NEAR(h.fractionBetween(0, 39), 0.5, 1e-9);
    // ...and toward the numerator only when the range covers the
    // whole overflow region [numBuckets*width, maxValue()].
    EXPECT_NEAR(h.fractionBetween(0, 200), 1.0, 1e-9);
    EXPECT_NEAR(h.fractionBetween(0, 150), 0.5, 1e-9);
    EXPECT_NEAR(h.fractionBetween(40, 200), 0.5, 1e-9);
}

TEST(Histogram, WeightedSamples)
{
    Group root(nullptr, "");
    Histogram h(&root, "h", "", 10, 1);
    h.sample(3, 7);
    EXPECT_EQ(h.samples(), 7u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Group, PathsAreDotted)
{
    Group root(nullptr, "");
    Group cpu(&root, "cpu");
    Group lsq(&cpu, "lsq");
    EXPECT_EQ(lsq.path(), "cpu.lsq");
}

TEST(Group, FindLocatesNestedStats)
{
    Group root(nullptr, "");
    Group cpu(&root, "cpu");
    Scalar s(&cpu, "cycles", "");
    s += 9;
    const StatBase *found = root.find("cpu.cycles");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->report(), 9.0);
    EXPECT_EQ(root.find("cpu.nothing"), nullptr);
    EXPECT_EQ(root.find("gpu.cycles"), nullptr);
}

TEST(Group, ResetAllRecurses)
{
    Group root(nullptr, "");
    Group child(&root, "c");
    Scalar a(&root, "a", ""), b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Formatter, TextSkipsZerosByDefault)
{
    Group root(nullptr, "");
    Scalar a(&root, "counted", "desc a");
    Scalar b(&root, "untouched", "desc b");
    a += 5;
    std::string text = toText(root);
    EXPECT_NE(text.find("counted"), std::string::npos);
    EXPECT_EQ(text.find("untouched"), std::string::npos);
    EXPECT_NE(text.find("desc a"), std::string::npos);
}

TEST(Formatter, CsvHasHeaderAndAllStats)
{
    Group root(nullptr, "");
    Group g(&root, "g");
    Scalar a(&g, "a", "");
    a += 2;
    std::ostringstream ss;
    dumpCsv(root, ss);
    std::string out = ss.str();
    EXPECT_NE(out.find("stat,value"), std::string::npos);
    EXPECT_NE(out.find("g.a,2"), std::string::npos);
}
