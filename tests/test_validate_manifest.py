#!/usr/bin/env python3
"""Unit tests for tools/validate_manifest.py — the negative cases.

The positive path (real simulator output validates) is exercised by
test_robust, test_farm and the kill/resume smoke; these tests pin the
validator's ability to *reject*: duplicate or missing farm job ids,
non-dense grid ids, inconsistent counts, statuses without errors.
Stdlib only; run directly or via ctest.
"""

import binascii
import copy
import importlib.util
import json
import os
import tempfile
import unittest

_TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, "tools", "validate_manifest.py")
_spec = importlib.util.spec_from_file_location("validate_manifest",
                                               _TOOL)
vm = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(vm)


def grid_doc():
    """A minimal valid ddsim-grid-v1 document."""
    def job(i):
        return {
            "id": i,
            "workload": "li",
            "scale": 4,
            "seed": 24301,
            "max_insts": 1000,
            "warmup_insts": 0,
            "config": {"notation": "(2+0)"},
        }
    return {
        "schema": vm.GRID_SCHEMA,
        "title": "test grid",
        "num_jobs": 3,
        "jobs": [job(i) for i in range(3)],
    }


def farm_doc():
    """A minimal valid ddsim-farm-manifest-v1 document."""
    def job(i, status="ok", worker="w0"):
        j = {"id": i, "worker": worker, "status": status,
             "attempts": 1, "wall_seconds": 0.5}
        if status != "ok":
            j["attempts"] = 2
            j["error"] = {"kind": "io", "message": "injected",
                          "transient": True}
        return j
    return {
        "schema": vm.FARM_SCHEMA,
        "title": "test farm",
        "generator": {"name": "ddsim", "version": "1", "git": "abc"},
        "num_jobs": 4,
        "workers": ["w0", "w1"],
        "shards": [
            {"shard": 0, "num_jobs": 2, "jobs": [job(0), job(2)]},
            {"shard": 1, "num_jobs": 2,
             "jobs": [job(1, worker="w1"),
                      job(3, status="recovered", worker="w1")]},
        ],
    }


class GridSpecChecks(unittest.TestCase):
    def test_valid_grid_passes(self):
        self.assertEqual(vm.check_grid_spec(grid_doc(), "grid"), 3)

    def assertRejected(self, doc, fragment):
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_grid_spec(doc, "grid")
        self.assertIn(fragment, str(ctx.exception))

    def test_rejects_non_dense_ids(self):
        doc = grid_doc()
        doc["jobs"][1]["id"] = 7
        self.assertRejected(doc, "dense")

    def test_rejects_num_jobs_mismatch(self):
        doc = grid_doc()
        doc["num_jobs"] = 5
        self.assertRejected(doc, "num_jobs")

    def test_rejects_empty_grid(self):
        doc = grid_doc()
        doc["jobs"] = []
        self.assertRejected(doc, "empty grid")

    def test_rejects_missing_notation(self):
        doc = grid_doc()
        del doc["jobs"][2]["config"]["notation"]
        self.assertRejected(doc, "notation")

    def test_rejects_zero_scale(self):
        doc = grid_doc()
        doc["jobs"][0]["scale"] = 0
        self.assertRejected(doc, "scale")

    def test_accepts_annotate_policies(self):
        doc = grid_doc()
        doc["jobs"][0]["annotate"] = "safe"
        doc["jobs"][1]["annotate"] = "hybrid"
        self.assertEqual(vm.check_grid_spec(doc, "grid"), 3)

    def test_rejects_unknown_annotate_policy(self):
        doc = grid_doc()
        doc["jobs"][0]["annotate"] = "yolo"
        self.assertRejected(doc, "annotate policy")

    def test_accepts_engines_and_sampled_plan(self):
        doc = grid_doc()
        doc["jobs"][0]["engine"] = "batched"
        doc["jobs"][1]["engine"] = "sampled"
        doc["jobs"][1]["sampling"] = {"period": 4096, "detail": 2560,
                                      "warmup": 256}
        self.assertEqual(vm.check_grid_spec(doc, "grid"), 3)

    def test_rejects_unknown_engine(self):
        doc = grid_doc()
        doc["jobs"][0]["engine"] = "warp-drive"
        self.assertRejected(doc, "unknown engine")

    def test_rejects_sampled_without_plan(self):
        doc = grid_doc()
        doc["jobs"][0]["engine"] = "sampled"
        self.assertRejected(doc, "without a")

    def test_rejects_plan_on_exact_engine(self):
        doc = grid_doc()
        doc["jobs"][0]["engine"] = "batched"
        doc["jobs"][0]["sampling"] = {"period": 4096, "detail": 2560,
                                      "warmup": 256}
        self.assertRejected(doc, "only 'sampled'")

    def test_rejects_overlong_sampling_window(self):
        doc = grid_doc()
        doc["jobs"][0]["engine"] = "sampled"
        doc["jobs"][0]["sampling"] = {"period": 1024, "detail": 1024,
                                      "warmup": 1}
        self.assertRejected(doc, "exceed period")

    def test_rejects_sampled_with_whole_run_warmup(self):
        doc = grid_doc()
        doc["jobs"][0]["engine"] = "sampled"
        doc["jobs"][0]["sampling"] = {"period": 4096, "detail": 2560,
                                      "warmup": 256}
        doc["jobs"][0]["warmup_insts"] = 100
        self.assertRejected(doc, "whole-run warmup")

    def test_accepts_trace_path_point(self):
        doc = grid_doc()
        doc["jobs"][0]["trace_path"] = "traces/sample.xt"
        doc["jobs"][0]["engine"] = "replay"
        self.assertEqual(vm.check_grid_spec(doc, "grid"), 3)

    def test_rejects_empty_trace_path(self):
        doc = grid_doc()
        doc["jobs"][0]["trace_path"] = ""
        self.assertRejected(doc, "empty trace_path")

    def test_rejects_trace_path_with_annotate(self):
        doc = grid_doc()
        doc["jobs"][0]["trace_path"] = "traces/sample.xt"
        doc["jobs"][0]["annotate"] = "safe"
        self.assertRejected(doc, "annotate policy")

    def test_rejects_trace_path_with_live_engine(self):
        doc = grid_doc()
        doc["jobs"][0]["trace_path"] = "traces/sample.xt"
        doc["jobs"][0]["engine"] = "live"
        self.assertRejected(doc, "live engine")


class FarmManifestChecks(unittest.TestCase):
    def test_valid_farm_passes(self):
        self.assertEqual(vm.check_farm_manifest(farm_doc(), "farm"), 4)

    def assertRejected(self, doc, fragment):
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_farm_manifest(doc, "farm")
        self.assertIn(fragment, str(ctx.exception))

    def test_rejects_duplicate_job_id(self):
        doc = farm_doc()
        doc["shards"][1]["jobs"][0]["id"] = 0
        self.assertRejected(doc, "already reported")

    def test_rejects_missing_job_id(self):
        doc = farm_doc()
        doc["shards"][1]["jobs"][1]["id"] = 9
        self.assertRejected(doc, "missing [3]")

    def test_rejects_unknown_worker(self):
        doc = farm_doc()
        doc["shards"][0]["jobs"][0]["worker"] = "w9"
        self.assertRejected(doc, "not in the workers list")

    def test_rejects_unknown_status(self):
        doc = farm_doc()
        doc["shards"][0]["jobs"][0]["status"] = "exploded"
        self.assertRejected(doc, "unknown status")

    def test_rejects_failed_status_without_error(self):
        doc = farm_doc()
        del doc["shards"][1]["jobs"][1]["error"]
        self.assertRejected(doc, "error")

    def test_rejects_ok_status_with_error(self):
        doc = farm_doc()
        doc["shards"][0]["jobs"][0]["error"] = {
            "kind": "io", "message": "x", "transient": True}
        self.assertRejected(doc, "ok job carries an error")

    def test_rejects_shard_count_mismatch(self):
        doc = farm_doc()
        doc["shards"][0]["num_jobs"] = 3
        self.assertRejected(doc, "num_jobs")


def lint_doc():
    """A minimal valid ddsim-lint-v1 document: two programs, one with
    a warning diagnostic, mixes consistent with the verdict arrays."""
    def verdict(i, inst, load, v, annotated=False):
        return {"id": i, "inst": inst, "load": load, "verdict": v,
                "annotated": annotated}
    prog_a = {
        "program": "alpha",
        "errors": 0, "warnings": 1, "notes": 0,
        "loads": {"local": 1, "nonlocal": 1, "ambiguous": 0},
        "stores": {"local": 1, "nonlocal": 0, "ambiguous": 1},
        "verdicts": [
            verdict(0, 2, True, "local", annotated=True),
            verdict(1, 5, False, "local", annotated=True),
            verdict(2, 9, True, "nonlocal"),
            verdict(3, 12, False, "ambiguous"),
        ],
        "functions": [],
        "diagnostics": [
            {"severity": "warning", "id": "sp-inexact", "inst": 4,
             "function": "main", "message": "dynamic frame"},
        ],
    }
    prog_b = {
        "program": "beta",
        "errors": 0, "warnings": 0, "notes": 0,
        "loads": {"local": 0, "nonlocal": 0, "ambiguous": 0},
        "stores": {"local": 1, "nonlocal": 0, "ambiguous": 0},
        "verdicts": [verdict(0, 3, False, "local", annotated=True)],
        "functions": [],
        "diagnostics": [],
    }
    return {
        "schema": vm.LINT_SCHEMA,
        "generator": {"name": "ddsim", "version": "1", "git": "abc"},
        "programs": [prog_a, prog_b],
        "summary": {
            "programs": 2,
            "errors": 0, "warnings": 1, "notes": 0,
            "loads": {"local": 1, "nonlocal": 1, "ambiguous": 0},
            "stores": {"local": 2, "nonlocal": 0, "ambiguous": 1},
        },
    }


class LintDocumentChecks(unittest.TestCase):
    def test_valid_lint_doc_passes(self):
        self.assertEqual(vm.check_lint_document(lint_doc(), "lint"), 2)

    def assertRejected(self, doc, fragment):
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_lint_document(doc, "lint")
        self.assertIn(fragment, str(ctx.exception))

    def test_rejects_unknown_verdict(self):
        doc = lint_doc()
        doc["programs"][0]["verdicts"][2]["verdict"] = "maybe"
        self.assertRejected(doc, "unknown verdict")

    def test_rejects_non_dense_verdict_ids(self):
        doc = lint_doc()
        doc["programs"][0]["verdicts"][1]["id"] = 5
        self.assertRejected(doc, "dense")

    def test_rejects_non_increasing_inst(self):
        doc = lint_doc()
        doc["programs"][0]["verdicts"][1]["inst"] = 2
        self.assertRejected(doc, "strictly")

    def test_rejects_mix_inconsistent_with_verdicts(self):
        doc = lint_doc()
        doc["programs"][0]["loads"]["local"] = 2
        self.assertRejected(doc, "verdicts array totals")

    def test_rejects_diag_count_mismatch(self):
        doc = lint_doc()
        doc["programs"][0]["warnings"] = 0
        self.assertRejected(doc, "diagnostics array holds")

    def test_rejects_summary_total_drift(self):
        doc = lint_doc()
        doc["summary"]["stores"]["local"] = 7
        self.assertRejected(doc, "programs total")

    def test_rejects_summary_program_count(self):
        doc = lint_doc()
        doc["summary"]["programs"] = 3
        self.assertRejected(doc, "summary.programs")

    def test_rejects_duplicate_program(self):
        doc = lint_doc()
        doc["programs"][1] = copy.deepcopy(doc["programs"][0])
        self.assertRejected(doc, "duplicate program")

    def test_rejects_missing_generator(self):
        doc = lint_doc()
        del doc["generator"]["git"]
        self.assertRejected(doc, "generator")

    def test_rejects_unknown_severity(self):
        doc = lint_doc()
        doc["programs"][0]["diagnostics"][0]["severity"] = "fatal"
        self.assertRejected(doc, "unknown severity")


def run_doc():
    """A minimal valid ddsim-manifest-v1 run document."""
    return {
        "schema": vm.RUN_SCHEMA,
        "generator": {"name": "ddsim", "version": "1", "git": "abc"},
        "run": {
            "workload": "li",
            "config": {
                "notation": "(2+0)",
                "l1": {"size_bytes": 32768, "assoc": 4,
                       "line_bytes": 32, "hit_latency": 1, "ports": 2},
            },
            "wall_seconds": 0.1,
            "options": {"engine": "replay"},
        },
        "result": {
            "cycles": 100, "committed": 150, "ipc": 1.5,
            "streams": {"lsq": {"loads": 10, "stores": 5},
                        "lvaq": {"loads": 20, "stores": 8}},
        },
    }


class RunManifestChecks(unittest.TestCase):
    """External-trace provenance and the sampled error-bar rule."""

    def assertRejected(self, doc, fragment):
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_run_manifest(doc, "run")
        self.assertIn(fragment, str(ctx.exception))

    def test_minimal_run_passes(self):
        vm.check_run_manifest(run_doc(), "run")

    def test_accepts_trace_source(self):
        doc = run_doc()
        doc["run"]["trace_source"] = {
            "format": "xtrace", "path": "/tmp/sample.xt",
            "insts": 201, "hints_valid": True}
        vm.check_run_manifest(doc, "run")

    def test_rejects_unknown_trace_format(self):
        doc = run_doc()
        doc["run"]["trace_source"] = {
            "format": "pcap", "path": "x", "insts": 1,
            "hints_valid": False}
        self.assertRejected(doc, "unknown format")

    def test_rejects_empty_trace(self):
        doc = run_doc()
        doc["run"]["trace_source"] = {
            "format": "xtrace", "path": "x", "insts": 0,
            "hints_valid": False}
        self.assertRejected(doc, "insts 0")

    def test_rejects_live_engine_on_trace_run(self):
        doc = run_doc()
        doc["run"]["options"]["engine"] = "live"
        doc["run"]["trace_source"] = {
            "format": "xtrace", "path": "x", "insts": 1,
            "hints_valid": False}
        self.assertRejected(doc, "live engine")

    def sampled_doc(self, windows, ci=None):
        doc = run_doc()
        doc["run"]["options"]["engine"] = "sampled"
        doc["result"]["sampling"] = {
            "period": 4096, "detail": 2560, "warmup": 256,
            "windows": windows, "detail_insts": 100,
            "detail_cycles": 80}
        if ci is not None:
            doc["result"]["sampling"]["ipc_ci95"] = ci
        return doc

    def test_accepts_multi_window_with_ci(self):
        vm.check_run_manifest(self.sampled_doc(3, ci=0.05), "run")

    def test_accepts_single_window_without_ci(self):
        vm.check_run_manifest(self.sampled_doc(1), "run")

    def test_rejects_single_window_with_ci(self):
        self.assertRejected(self.sampled_doc(1, ci=0.05),
                            "needs >= 2")

    def test_rejects_multi_window_without_ci(self):
        self.assertRejected(self.sampled_doc(2), "ipc_ci95")


class SweepManifestChecks(unittest.TestCase):
    """The pre-existing degraded-sweep checks still hold after the
    farm extensions (regression guard for the shared helpers)."""

    def sweep_doc(self):
        return {
            "schema": vm.SWEEP_SCHEMA,
            "title": "t",
            "generator": {"name": "n", "version": "v", "git": "g"},
            "num_runs": 2,
            "degraded": True,
            "num_quarantined": 1,
            "num_recovered": 0,
            "jobs": [
                {"index": 0, "status": "ok", "attempts": 1,
                 "error": None},
                {"index": 1, "status": "quarantined", "attempts": 3,
                 "error": {"kind": "program", "message": "boom",
                           "transient": False}},
            ],
            "runs": [None, None],
        }

    def test_degraded_sweep_passes(self):
        vm.check_sweep_manifest(self.sweep_doc(), "sweep")

    def test_rejects_quarantine_count_mismatch(self):
        doc = self.sweep_doc()
        doc["num_quarantined"] = 0
        with self.assertRaises(vm.Invalid):
            vm.check_sweep_manifest(doc, "sweep")

    def test_rejects_quarantined_with_manifest(self):
        doc = self.sweep_doc()
        doc["runs"][1] = copy.deepcopy(doc["runs"][0])
        doc["runs"][1] = {"schema": "x"}
        with self.assertRaises(vm.Invalid):
            vm.check_sweep_manifest(doc, "sweep")


def sealed(schema, payload_key, payload):
    """Render a CRC-sealed spool artifact the way the C++ writer does:
    wrapper {schema, crc32, <payload_key>: {...}} with the payload
    last, seal patched in over the raw text. Returns (doc, raw)."""
    doc = {"schema": schema, "crc32": "00000000", payload_key: payload}
    raw = json.dumps(doc, indent=2)
    body = vm.crc_payload(raw, payload_key, "fixture")
    crc = f"{binascii.crc32(body.encode()) & 0xffffffff:08x}"
    raw = raw.replace('"crc32": "00000000"', f'"crc32": "{crc}"', 1)
    return json.loads(raw), raw


def result_record(status="ok", mcrc="deadbeef"):
    rec = {"id": 2, "status": status, "attempts": 1, "error": None,
           "worker": "w0", "shard": 0, "wall_seconds": 0.5,
           "manifest_crc32": mcrc}
    if status != "ok":
        rec["attempts"] = 3
        rec["error"] = {"kind": "hung", "message": "watchdog",
                        "transient": False}
    return rec


class SpooledJobChecks(unittest.TestCase):
    """CRC-sealed ddsim-job-v2 spool artifacts."""

    def job(self):
        return grid_doc()["jobs"][0]

    def test_valid_sealed_job_passes(self):
        doc, raw = sealed(vm.JOB_SCHEMA, "job", self.job())
        vm.check_job_v2(doc, raw, "job")

    def test_rejects_tampered_payload(self):
        doc, raw = sealed(vm.JOB_SCHEMA, "job", self.job())
        raw = raw.replace('"workload": "li"', '"workload": "xx"')
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_job_v2(json.loads(raw), raw, "job")
        self.assertIn("crc32 seal", str(ctx.exception))

    def test_rejects_tampered_seal(self):
        doc, raw = sealed(vm.JOB_SCHEMA, "job", self.job())
        raw = raw.replace(f'"crc32": "{doc["crc32"]}"',
                          '"crc32": "00000000"')
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_job_v2(json.loads(raw), raw, "job")
        self.assertIn("corrupt", str(ctx.exception))

    def test_rejects_bad_grid_job_even_when_sealed(self):
        job = self.job()
        job["scale"] = 0
        doc, raw = sealed(vm.JOB_SCHEMA, "job", job)
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_job_v2(doc, raw, "job")
        self.assertIn("scale", str(ctx.exception))


class SpooledResultChecks(unittest.TestCase):
    """CRC-sealed ddsim-job-result-v2 records and their sibling
    manifest hash."""

    def test_valid_sealed_record_passes(self):
        doc, raw = sealed(vm.JOB_RESULT_SCHEMA, "record",
                          result_record())
        vm.check_job_result_v2(doc, raw, "result")

    def test_rejects_tampered_record(self):
        doc, raw = sealed(vm.JOB_RESULT_SCHEMA, "record",
                          result_record())
        raw = raw.replace('"worker": "w0"', '"worker": "wX"')
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_job_result_v2(json.loads(raw), raw, "result")
        self.assertIn("crc32 seal", str(ctx.exception))

    def test_rejects_quarantined_record_with_manifest_crc(self):
        doc, raw = sealed(vm.JOB_RESULT_SCHEMA, "record",
                          result_record(status="quarantined"))
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_job_result_v2(doc, raw, "result")
        self.assertIn("promises a", str(ctx.exception))

    def test_accepts_quarantined_record_without_manifest(self):
        doc, raw = sealed(vm.JOB_RESULT_SCHEMA, "record",
                          result_record(status="quarantined",
                                        mcrc=None))
        vm.check_job_result_v2(doc, raw, "result")

    def test_rejects_non_hex_manifest_crc(self):
        doc, raw = sealed(vm.JOB_RESULT_SCHEMA, "record",
                          result_record(mcrc="NOTAHEX!"))
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_job_result_v2(doc, raw, "result")
        self.assertIn("8 hex", str(ctx.exception))

    def test_sibling_manifest_hash_is_verified(self):
        manifest = b'{"schema": "x", "result": 1}\n'
        mcrc = f"{binascii.crc32(manifest) & 0xffffffff:08x}"
        doc, raw = sealed(vm.JOB_RESULT_SCHEMA, "record",
                          result_record(mcrc=mcrc))
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "job-000002.json")
            with open(path, "w") as f:
                f.write(raw)
            with open(os.path.join(d, "job-000002.manifest.json"),
                      "wb") as f:
                f.write(manifest)
            vm.check_job_result_v2(doc, raw, "result", path=path)

            # One flipped byte in the manifest and the record's
            # promise no longer holds.
            with open(os.path.join(d, "job-000002.manifest.json"),
                      "wb") as f:
                f.write(manifest[:-2] + b"2\n")
            with self.assertRaises(vm.Invalid) as ctx:
                vm.check_job_result_v2(doc, raw, "result", path=path)
            self.assertIn("manifest is corrupt", str(ctx.exception))

    def test_missing_sibling_is_tolerated(self):
        doc, raw = sealed(vm.JOB_RESULT_SCHEMA, "record",
                          result_record())
        vm.check_job_result_v2(doc, raw, "result",
                               path="/nonexistent/job-000002.json")


class ClaimChecks(unittest.TestCase):
    """ddsim-claim-v1 lease documents."""

    def claim(self):
        return {"schema": vm.CLAIM_SCHEMA, "id": 1, "shard": 0,
                "worker": "w0", "pid": 4242,
                "acquired_unix": 1754500000,
                "job_crc32": "0badf00d"}

    def assertRejected(self, doc, fragment):
        with self.assertRaises(vm.Invalid) as ctx:
            vm.check_claim_v1(doc, "claim")
        self.assertIn(fragment, str(ctx.exception))

    def test_valid_claim_passes(self):
        vm.check_claim_v1(self.claim(), "claim")

    def test_rejects_zero_pid(self):
        doc = self.claim()
        doc["pid"] = 0
        self.assertRejected(doc, "pid")

    def test_rejects_empty_worker(self):
        doc = self.claim()
        doc["worker"] = ""
        self.assertRejected(doc, "empty worker")

    def test_rejects_non_hex_job_crc(self):
        doc = self.claim()
        doc["job_crc32"] = "0badf00dz"
        self.assertRejected(doc, "8 hex")

    def test_rejects_negative_acquired_time(self):
        doc = self.claim()
        doc["acquired_unix"] = -1
        self.assertRejected(doc, "acquired_unix")


if __name__ == "__main__":
    unittest.main()
