/**
 * @file
 * The sweep-farm battery: grid-spec round-trips, spool/claim
 * semantics, worker execution, resume-after-interruption, shard-count
 * invariance of the merged manifest (bit-identical to an in-process
 * SweepRunner reference), persistent-fault quarantine parity, the
 * concurrent claim race, and — through the real ddsweep binary —
 * supervisor crash isolation with crash-quarantine.
 *
 * Labelled "farm" in ctest. The supervisor tests exec the ddsweep
 * tool (path baked in via DDSIM_DDSWEEP), so they exercise the same
 * process tree a production farm uses.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "config/presets.hh"
#include "robust/fault_inject.hh"
#include "sim/farm.hh"
#include "sim/grid_spec.hh"
#include "sim/sweep.hh"
#include "sim/table.hh"
#include "util/file_claim.hh"
#include "util/json.hh"
#include "util/json_parse.hh"
#include "util/log.hh"
#include "util/subprocess.hh"

using namespace ddsim;
using namespace ddsim::sim;

namespace {

/** Fresh per-test scratch directory under gtest's temp root. */
std::string
freshDir(const std::string &leaf)
{
    std::string path = ::testing::TempDir() + "farm_" + leaf;
    std::filesystem::remove_all(path);
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << text;
}

/**
 * A small but real grid: two workloads x two machines, capped so each
 * point simulates quickly. The same spec drives every farm test, so
 * byte-comparisons all share one reference document.
 */
GridSpec
smallGrid()
{
    GridSpec spec;
    spec.title = "farm test grid";
    const char *workloads[] = {"li", "compress"};
    std::uint64_t id = 0;
    for (const char *wl : workloads) {
        for (int m : {0, 2}) {
            GridJob job;
            job.id = id++;
            job.workload = wl;
            job.scale = 4;
            job.seed = 0x5eed;
            job.maxInsts = 3000;
            job.warmupInsts = 100;
            job.cfg = m == 0 ? config::baseline(2)
                             : config::decoupled(2, m);
            spec.jobs.push_back(std::move(job));
        }
    }
    return spec;
}

/** The uninterrupted in-process reference manifest for smallGrid(). */
const std::string &
referenceManifest()
{
    static std::string bytes = [] {
        std::string path = freshDir("reference") + ".json";
        farm::runSerial(smallGrid(), 2, RetryPolicy{}, 0, 0.0, path);
        return slurp(path);
    }();
    return bytes;
}

class QuietGuard
{
  public:
    QuietGuard() { setQuiet(true); }
    ~QuietGuard() { setQuiet(false); }
};

} // namespace

// ---------------------------------------------------------------------
// Grid specs
// ---------------------------------------------------------------------

TEST(GridSpec, RoundTripsThroughJson)
{
    GridSpec spec = smallGrid();
    std::string path = freshDir("roundtrip") + ".json";
    spec.writeFile(path);

    GridSpec back = GridSpec::fromFile(path);
    EXPECT_EQ(back.title, spec.title);
    ASSERT_EQ(back.jobs.size(), spec.jobs.size());
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        EXPECT_EQ(back.jobs[i].id, spec.jobs[i].id);
        EXPECT_EQ(back.jobs[i].workload, spec.jobs[i].workload);
        EXPECT_EQ(back.jobs[i].scale, spec.jobs[i].scale);
        EXPECT_EQ(back.jobs[i].seed, spec.jobs[i].seed);
        EXPECT_EQ(back.jobs[i].maxInsts, spec.jobs[i].maxInsts);
        EXPECT_EQ(back.jobs[i].warmupInsts, spec.jobs[i].warmupInsts);
        EXPECT_EQ(back.jobs[i].cfg.notation(),
                  spec.jobs[i].cfg.notation());
        EXPECT_EQ(back.jobs[i].cfg.lvc.ports,
                  spec.jobs[i].cfg.lvc.ports);
    }

    // A re-serialized parse is byte-identical: the writer layout is
    // the canonical form.
    std::string again = freshDir("roundtrip2") + ".json";
    back.writeFile(again);
    EXPECT_EQ(slurp(path), slurp(again));
}

TEST(GridSpec, RejectsMalformedDocuments)
{
    QuietGuard quiet;
    GridSpec spec = smallGrid();
    std::string path = freshDir("malformed") + ".json";
    spec.writeFile(path);
    const std::string good = slurp(path);

    auto patched = [&](const std::string &from, const std::string &to) {
        std::string text = good;
        auto pos = text.find(from);
        ASSERT_NE(pos, std::string::npos) << from;
        text.replace(pos, from.size(), to);
        spit(path, text);
    };

    patched("ddsim-grid-v1", "ddsim-grid-v0");
    EXPECT_THROW(GridSpec::fromFile(path), FatalError);

    // Dense-id violation: first job claims id 7.
    patched("\"id\": 0", "\"id\": 7");
    EXPECT_THROW(GridSpec::fromFile(path), FatalError);

    patched("\"workload\": \"li\"", "\"workload\": \"spice\"");
    EXPECT_THROW(GridSpec::fromFile(path), FatalError);

    // Notation redundancy check: edit a config field, keep the
    // notation string.
    patched("\"lvc_enabled\": false", "\"lvc_enabled\": true");
    EXPECT_THROW(GridSpec::fromFile(path), ConfigError);

    patched("\"num_jobs\": 4", "\"num_jobs\": 5");
    EXPECT_THROW(GridSpec::fromFile(path), FatalError);

    spit(path, "{ not json");
    EXPECT_THROW(GridSpec::fromFile(path), JsonParseError);
}

// ---------------------------------------------------------------------
// Spooling and claims
// ---------------------------------------------------------------------

TEST(Spool, NamesRoundTrip)
{
    farm::SpoolEntry e;
    ASSERT_TRUE(
        farm::parseSpoolName(farm::Spool::jobFileName(12, 3), e));
    EXPECT_EQ(e.id, 12u);
    EXPECT_EQ(e.shard, 3);
    EXPECT_TRUE(e.worker.empty());

    ASSERT_TRUE(farm::parseSpoolName(
        farm::Spool::claimFileName(1048577, 41, "w7"), e));
    EXPECT_EQ(e.id, 1048577u);
    EXPECT_EQ(e.shard, 41);
    EXPECT_EQ(e.worker, "w7");

    EXPECT_FALSE(farm::parseSpoolName("job-000001.json", e));
    EXPECT_FALSE(
        farm::parseSpoolName("job-000001.manifest.json", e));
    EXPECT_FALSE(farm::parseSpoolName("grid.json", e));
    EXPECT_FALSE(farm::parseSpoolName("job-00000x.s001.json", e));
}

TEST(Spool, SpoolGridLaysOutJobsRoundRobin)
{
    GridSpec spec = smallGrid();
    std::string root = freshDir("layout");
    farm::spoolGrid(spec, root, 2);

    farm::Spool sp(root);
    EXPECT_TRUE(fileExists(sp.gridPath()));
    std::vector<std::string> names = listDir(sp.jobsDir());
    ASSERT_EQ(names.size(), spec.jobs.size());
    for (const std::string &name : names) {
        farm::SpoolEntry e;
        ASSERT_TRUE(farm::parseSpoolName(name, e)) << name;
        EXPECT_EQ(e.shard, static_cast<int>(e.id % 2)) << name;
    }

    farm::SpoolStatus st = farm::scanSpool(root);
    EXPECT_EQ(st.total, spec.jobs.size());
    EXPECT_EQ(st.pending, spec.jobs.size());
    EXPECT_EQ(st.done(), 0u);
    EXPECT_EQ(st.shards, 2);
    EXPECT_FALSE(st.complete());

    // Spooling refuses to clobber an existing spool.
    EXPECT_THROW(farm::spoolGrid(spec, root, 2), FatalError);
}

TEST(Spool, ConcurrentClaimRaceIsExclusive)
{
    GridSpec spec = smallGrid();
    std::string root = freshDir("race");
    // 1 shard so all 8 claimants fight over the same files.
    farm::spoolGrid(spec, root, 1);
    farm::Spool sp(root);

    constexpr int kThreads = 8;
    std::vector<std::vector<std::uint64_t>> won(kThreads);
    std::vector<std::thread> threads;
    std::atomic<bool> go{false};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load())
                std::this_thread::yield();
            std::string worker = "t" + std::to_string(t);
            while (true) {
                std::vector<std::string> names =
                    listDir(sp.jobsDir());
                if (names.empty())
                    return;
                for (const std::string &name : names) {
                    farm::SpoolEntry e;
                    if (!farm::parseSpoolName(name, e))
                        continue;
                    if (claimFile(sp.jobsDir() + "/" + name,
                                  sp.claimsDir() + "/" +
                                      farm::Spool::claimFileName(
                                          e.id, e.shard, worker)))
                        won[static_cast<std::size_t>(t)].push_back(
                            e.id);
                }
            }
        });
    }
    go.store(true);
    for (std::thread &t : threads)
        t.join();

    // Every job claimed exactly once across all threads; none dropped,
    // none double-claimed.
    std::vector<std::uint64_t> all;
    for (const auto &ids : won)
        all.insert(all.end(), ids.begin(), ids.end());
    EXPECT_EQ(all.size(), spec.jobs.size());
    EXPECT_EQ(std::set<std::uint64_t>(all.begin(), all.end()).size(),
              spec.jobs.size());
    EXPECT_TRUE(listDir(sp.jobsDir()).empty());
    EXPECT_EQ(listDir(sp.claimsDir()).size(), spec.jobs.size());
}

// ---------------------------------------------------------------------
// Workers, merge, shard invariance
// ---------------------------------------------------------------------

TEST(Farm, MergedManifestIsShardCountInvariant)
{
    for (int shards : {1, 2, 4}) {
        std::string root =
            freshDir("shards" + std::to_string(shards));
        farm::spoolGrid(smallGrid(), root, shards);

        // One worker per shard, run to drain; the last worker steals
        // whatever earlier ones left. Sequential execution is the
        // worst case for work-stealing coverage and keeps the test
        // deterministic.
        std::size_t total = 0;
        for (int s = 0; s < shards; ++s) {
            farm::WorkerOptions wo;
            wo.workerId = "w" + std::to_string(s);
            wo.shard = s;
            total += farm::runWorker(root, wo);
        }
        EXPECT_EQ(total, smallGrid().jobs.size());
        EXPECT_TRUE(farm::scanSpool(root).complete());

        std::string merged = root + "/merged.json";
        std::string farmDoc = root + "/farm.json";
        farm::mergeSpool(root, merged, farmDoc);

        // The whole point of the farm: bytes, not just values.
        EXPECT_EQ(slurp(merged), referenceManifest())
            << "shards=" << shards;

        // The provenance document carries the shard/worker story.
        JsonValue fdoc = parseJsonFile(farmDoc);
        EXPECT_EQ(fdoc.at("schema", "farm").asString("schema"),
                  "ddsim-farm-manifest-v1");
        EXPECT_EQ(fdoc.at("num_jobs", "farm").asUint("num_jobs"),
                  smallGrid().jobs.size());
        EXPECT_EQ(
            fdoc.at("shards", "farm").asArray("shards").size(),
            static_cast<std::size_t>(shards));
    }
}

TEST(Farm, ResumeRerunsExactlyTheMissingJobs)
{
    const GridSpec spec = smallGrid();
    std::string root = freshDir("resume");
    farm::spoolGrid(spec, root, 2);
    farm::Spool sp(root);

    // Phase 1: a worker that "dies" after two jobs...
    farm::WorkerOptions wo;
    wo.workerId = "w0";
    wo.shard = 0;
    wo.maxJobs = 2;
    EXPECT_EQ(farm::runWorker(root, wo), 2u);

    // ...mid-claim on a third: strand one pending job in claims/, the
    // way a SIGKILL between claim and result would.
    std::vector<std::string> pending = listDir(sp.jobsDir());
    ASSERT_FALSE(pending.empty());
    farm::SpoolEntry stranded;
    ASSERT_TRUE(farm::parseSpoolName(pending.front(), stranded));
    ASSERT_TRUE(claimFile(
        sp.jobsDir() + "/" + pending.front(),
        sp.claimsDir() + "/" +
            farm::Spool::claimFileName(stranded.id, stranded.shard,
                                       "dead")));

    farm::SpoolStatus st = farm::scanSpool(root);
    EXPECT_EQ(st.done(), 2u);
    EXPECT_EQ(st.claimed, 1u);
    EXPECT_EQ(st.pending, spec.jobs.size() - 3);

    // Resume bookkeeping: exactly the stranded claim is requeued (the
    // still-pending files were never lost), and nothing completed is
    // touched.
    EXPECT_EQ(farm::requeueIncomplete(root, false), 1u);
    st = farm::scanSpool(root);
    EXPECT_EQ(st.claimed, 0u);
    EXPECT_EQ(st.pending, spec.jobs.size() - 2);

    // Phase 2: a fresh worker drains the rest — exactly n-2 jobs.
    farm::WorkerOptions wo2;
    wo2.workerId = "w1";
    EXPECT_EQ(farm::runWorker(root, wo2), spec.jobs.size() - 2);
    EXPECT_TRUE(farm::scanSpool(root).complete());

    // The interrupted-and-resumed farm merges to the same bytes as
    // the uninterrupted reference.
    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, root + "/farm.json");
    EXPECT_EQ(slurp(merged), referenceManifest());

    // Provenance shows the split: w0 ran 2, w1 ran the rest.
    JsonValue fdoc = parseJsonFile(root + "/farm.json");
    std::size_t byW0 = 0, byW1 = 0;
    for (const JsonValue &sh :
         fdoc.at("shards", "farm").asArray("shards")) {
        for (const JsonValue &job :
             sh.at("jobs", "shard").asArray("jobs")) {
            const std::string &worker =
                job.at("worker", "job").asString("worker");
            byW0 += worker == "w0";
            byW1 += worker == "w1";
        }
    }
    EXPECT_EQ(byW0, 2u);
    EXPECT_EQ(byW1, spec.jobs.size() - 2);
}

TEST(Farm, MergeRefusesAnIncompleteSpool)
{
    QuietGuard quiet;
    std::string root = freshDir("incomplete");
    farm::spoolGrid(smallGrid(), root, 1);
    farm::WorkerOptions wo;
    wo.maxJobs = 1;
    EXPECT_EQ(farm::runWorker(root, wo), 1u);
    EXPECT_THROW(
        farm::mergeSpool(root, root + "/merged.json", ""),
        FatalError);
}

// ---------------------------------------------------------------------
// Fault handling
// ---------------------------------------------------------------------

TEST(Farm, PersistentFaultQuarantinesIdenticallyToSerial)
{
    QuietGuard quiet;
    // Both the farm worker and the serial reference run under the
    // same injected persistent fault on every li point; the merged
    // documents must still be byte-identical — including the degraded
    // job table and the null run slots.
    robust::FaultInjector inj(1);
    inj.add({robust::FaultKind::JobPersistent, "li", "", 1});
    robust::ScopedFaultInjection scope(inj);

    std::string root = freshDir("persistent");
    farm::spoolGrid(smallGrid(), root, 2);
    farm::WorkerOptions wo;
    EXPECT_EQ(farm::runWorker(root, wo), smallGrid().jobs.size());

    farm::SpoolStatus st = farm::scanSpool(root);
    EXPECT_TRUE(st.complete());
    EXPECT_EQ(st.quarantined, 2u); // the two li points
    EXPECT_EQ(st.ok, 2u);

    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, root + "/farm.json");

    std::string refPath = freshDir("persistent_ref") + ".json";
    SweepOutcome ref = farm::runSerial(smallGrid(), 2, RetryPolicy{},
                                       0, 0.0, refPath);
    EXPECT_TRUE(ref.degraded);
    EXPECT_EQ(ref.numQuarantined, 2u);
    EXPECT_EQ(slurp(merged), slurp(refPath));

    // The per-job records carry the classified error.
    farm::Spool sp(root);
    farm::JobRecord rec = farm::jobRecordFromFile(
        sp.resultsDir() + "/" + farm::Spool::resultFileName(0));
    EXPECT_EQ(rec.status, JobStatus::Quarantined);
    EXPECT_EQ(rec.error.kind, "program");
    EXPECT_FALSE(rec.error.transient);
    EXPECT_EQ(rec.attempts, 1); // persistent: no retries burned
}

TEST(Farm, TransientFaultRecoversWithRetry)
{
    QuietGuard quiet;
    robust::FaultInjector inj(1);
    inj.add({robust::FaultKind::JobTransient, "compress", "", 1});
    robust::ScopedFaultInjection scope(inj);

    std::string root = freshDir("transient");
    farm::spoolGrid(smallGrid(), root, 1);
    farm::WorkerOptions wo;
    wo.retry.backoffMs = 0; // keep the test fast
    EXPECT_EQ(farm::runWorker(root, wo), smallGrid().jobs.size());

    farm::SpoolStatus st = farm::scanSpool(root);
    EXPECT_TRUE(st.complete());
    // The spec's empty notation matches both compress points; each
    // fails its first attempt and recovers on retry.
    EXPECT_EQ(st.quarantined, 0u);
    EXPECT_EQ(st.recovered, 2u);

    // Recovered jobs carry the recovered-from error in their record.
    farm::Spool sp(root);
    bool sawRecovered = false;
    for (const GridJob &job : smallGrid().jobs) {
        farm::JobRecord rec = farm::jobRecordFromFile(
            sp.resultsDir() + "/" +
            farm::Spool::resultFileName(job.id));
        if (rec.status != JobStatus::Recovered)
            continue;
        sawRecovered = true;
        EXPECT_GT(rec.attempts, 1);
        EXPECT_EQ(rec.error.kind, "io");
        EXPECT_TRUE(rec.error.transient);
    }
    EXPECT_TRUE(sawRecovered);
}

TEST(Farm, RetryQuarantinedRerunsQuarantinedPoints)
{
    QuietGuard quiet;
    std::string root = freshDir("retryq");
    {
        robust::FaultInjector inj(1);
        inj.add({robust::FaultKind::JobPersistent, "li", "", 1});
        robust::ScopedFaultInjection scope(inj);
        farm::spoolGrid(smallGrid(), root, 1);
        farm::WorkerOptions wo;
        farm::runWorker(root, wo);
    }
    EXPECT_EQ(farm::scanSpool(root).quarantined, 2u);

    // The "fault" is gone (injection scope closed); retrying the
    // quarantined points must requeue exactly those two and converge
    // on the clean reference bytes.
    EXPECT_EQ(farm::requeueIncomplete(root, true), 2u);
    farm::WorkerOptions wo;
    wo.workerId = "w1";
    EXPECT_EQ(farm::runWorker(root, wo), 2u);

    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, "");
    EXPECT_EQ(slurp(merged), referenceManifest());
}

// ---------------------------------------------------------------------
// Artifact integrity: checksummed spool files
// ---------------------------------------------------------------------

TEST(Farm, MergeQuarantinesACorruptResultManifest)
{
    QuietGuard quiet;
    std::string root = freshDir("corrupt_manifest");
    farm::spoolGrid(smallGrid(), root, 1);
    farm::WorkerOptions wo;
    EXPECT_EQ(farm::runWorker(root, wo), smallGrid().jobs.size());

    farm::Spool sp(root);
    std::string mpath =
        sp.resultsDir() + "/" + farm::Spool::manifestFileName(1);
    std::string bytes = slurp(mpath);
    bytes[bytes.size() / 2] ^= 0x01; // one flipped bit, anywhere
    spit(mpath, bytes);

    // The record's manifest_crc32 no longer matches, so the merge
    // refuses to splice: the pair is quarantined instead of a
    // silently-wrong merged document being produced.
    EXPECT_THROW(farm::mergeSpool(root, root + "/merged.json", ""),
                 CorruptArtifactError);
    EXPECT_FALSE(fileExists(mpath));
    EXPECT_FALSE(listDir(sp.corruptDir()).empty());

    // Resume re-runs exactly that point and converges on the
    // reference bytes.
    EXPECT_EQ(farm::requeueIncomplete(root, false), 1u);
    farm::WorkerOptions wo2;
    wo2.workerId = "w1";
    EXPECT_EQ(farm::runWorker(root, wo2), 1u);
    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, "");
    EXPECT_EQ(slurp(merged), referenceManifest());
}

TEST(Farm, MergeQuarantinesACorruptResultRecord)
{
    QuietGuard quiet;
    std::string root = freshDir("corrupt_record");
    farm::spoolGrid(smallGrid(), root, 1);
    farm::WorkerOptions wo;
    EXPECT_EQ(farm::runWorker(root, wo), smallGrid().jobs.size());

    farm::Spool sp(root);
    std::string rpath =
        sp.resultsDir() + "/" + farm::Spool::resultFileName(2);
    std::string text = slurp(rpath);
    auto pos = text.find("\"worker\": \"w0\"");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 14, "\"worker\": \"wX\"");
    spit(rpath, text);

    // The seal covers the whole payload, so even a "plausible" edit
    // is caught at read time, at scan time, and at merge time.
    EXPECT_THROW(farm::jobRecordFromFile(rpath),
                 CorruptArtifactError);
    EXPECT_EQ(farm::scanSpool(root).corrupt, 1u);
    EXPECT_THROW(farm::mergeSpool(root, root + "/merged.json", ""),
                 CorruptArtifactError);
    EXPECT_FALSE(fileExists(rpath));

    EXPECT_EQ(farm::requeueIncomplete(root, false), 1u);
    farm::WorkerOptions wo2;
    wo2.workerId = "w1";
    EXPECT_EQ(farm::runWorker(root, wo2), 1u);
    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, "");
    EXPECT_EQ(slurp(merged), referenceManifest());
}

TEST(Farm, WorkerRebuildsACorruptJobSpecFromTheGrid)
{
    QuietGuard quiet;
    std::string root = freshDir("corrupt_spec");
    farm::spoolGrid(smallGrid(), root, 1);

    farm::Spool sp(root);
    std::string jpath =
        sp.jobsDir() + "/" + farm::Spool::jobFileName(0, 0);
    std::string text = slurp(jpath);
    auto pos = text.find("\"workload\": \"li\"");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 16, "\"workload\": \"xx\"");
    spit(jpath, text);

    // The claimed spec fails its CRC, so the worker falls back to
    // grid.json — the source of truth — instead of running (or
    // crashing on) damaged parameters. Every point still completes
    // and the merged bytes are unaffected.
    farm::WorkerOptions wo;
    EXPECT_EQ(farm::runWorker(root, wo), smallGrid().jobs.size());
    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, "");
    EXPECT_EQ(slurp(merged), referenceManifest());
}

// ---------------------------------------------------------------------
// Quarantined placeholders are visibly degraded downstream
// ---------------------------------------------------------------------

TEST(Table, QuarantinedPlaceholderIsMarked)
{
    QuietGuard quiet;
    robust::FaultInjector inj(1);
    inj.add({robust::FaultKind::JobPersistent, "li", "", 1});
    robust::ScopedFaultInjection scope(inj);

    SweepOutcome out =
        farm::runSerial(smallGrid(), 2, RetryPolicy{}, 0, 0.0, "");
    ASSERT_TRUE(out.degraded);

    // The placeholder is flagged, and every cell derived from it says
    // so instead of printing the placeholder's zeros as data.
    ASSERT_TRUE(out.results[0].quarantined);   // li point
    ASSERT_FALSE(out.results[2].quarantined);  // compress point
    EXPECT_EQ(Table::cell(out.results[0], out.results[0].ipc),
              Table::kQuarantined);
    EXPECT_NE(Table::cell(out.results[2], out.results[2].ipc),
              Table::kQuarantined);

    Table t({"program", "ipc"});
    t.addRow({"li", Table::cell(out.results[0], out.results[0].ipc)});
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find(Table::kQuarantined), std::string::npos);
}

// ---------------------------------------------------------------------
// Supervisor end-to-end (real ddsweep worker processes)
// ---------------------------------------------------------------------

#ifdef DDSIM_DDSWEEP

TEST(Supervisor, RunsAFarmOfWorkerProcesses)
{
    std::string root = freshDir("super");
    farm::spoolGrid(smallGrid(), root, 2);

    farm::SupervisorOptions sup;
    sup.exePath = DDSIM_DDSWEEP;
    sup.workers = 2;
    farm::SpoolStatus st = farm::superviseFarm(root, sup);
    EXPECT_TRUE(st.complete());
    EXPECT_EQ(st.quarantined, 0u);

    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, root + "/farm.json");
    EXPECT_EQ(slurp(merged), referenceManifest());
}

TEST(Supervisor, CrashIsolationQuarantinesTheKillerJob)
{
    QuietGuard quiet;
    std::string root = freshDir("crash");
    farm::spoolGrid(smallGrid(), root, 2);

    // Every li attempt aborts the whole worker process. The farm must
    // survive: respawn workers, finish the compress points, and
    // crash-quarantine the li points instead of respawning forever.
    farm::SupervisorOptions sup;
    sup.exePath = DDSIM_DDSWEEP;
    sup.workers = 2;
    sup.crashQuarantineAfter = 2;
    sup.respawnLimit = 16;
    sup.workerArgs = {"--inject=crash:li:"};

    farm::SpoolStatus st = farm::superviseFarm(root, sup);
    EXPECT_TRUE(st.complete());
    EXPECT_EQ(st.quarantined, 2u);
    EXPECT_EQ(st.ok, 2u);

    farm::Spool sp(root);
    farm::JobRecord rec = farm::jobRecordFromFile(
        sp.resultsDir() + "/" + farm::Spool::resultFileName(0));
    EXPECT_EQ(rec.status, JobStatus::Quarantined);
    EXPECT_EQ(rec.error.kind, "crash");
    EXPECT_EQ(rec.attempts, sup.crashQuarantineAfter);

    // The merged manifest is a valid degraded sweep document with
    // null slots at the crashed points.
    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, root + "/farm.json");
    JsonValue doc = parseJsonFile(merged);
    EXPECT_TRUE(doc.at("degraded", "sweep").asBool("degraded"));
    const auto &runs = doc.at("runs", "sweep").asArray("runs");
    EXPECT_TRUE(runs[0].isNull());
    EXPECT_FALSE(runs[2].isNull());
}

TEST(Supervisor, SigtermDrainsTheWorkerCleanly)
{
    QuietGuard quiet;
    std::string root = freshDir("drain");
    farm::spoolGrid(smallGrid(), root, 1);

    // The injected hang keeps the worker inside its first li point
    // for ~2s, guaranteeing the SIGTERM lands mid-job. Drain
    // semantics: finish that point, persist it, release the claim,
    // exit 0.
    pid_t pid = spawnProcess({DDSIM_DDSWEEP, "worker",
                              "--spool=" + root, "--worker=w0",
                              "--inject=hang:li::2"});
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    killProcess(pid, SIGTERM);
    ProcessExit ex = waitProcess(pid);
    EXPECT_TRUE(ex.ok()) << ex.describe();

    // No stranded claim, no torn artifact: whatever completed is
    // durable, the rest is still queued for a successor.
    farm::Spool sp(root);
    EXPECT_TRUE(listDir(sp.claimsDir()).empty());
    EXPECT_EQ(farm::requeueIncomplete(root, false), 0u);

    farm::WorkerOptions wo;
    wo.workerId = "w1";
    farm::runWorker(root, wo);
    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, "");
    EXPECT_EQ(slurp(merged), referenceManifest());
}

TEST(Supervisor, StalledWorkerLosesItsLeaseAndThePointCompletes)
{
    QuietGuard quiet;
    std::string root = freshDir("stall");
    farm::spoolGrid(smallGrid(), root, 2);

    // w0 SIGSTOPs itself after its first claim: its heartbeat
    // freezes, the lease goes stale, and the supervisor must SIGKILL
    // it and hand the point to another worker. Nothing may end up
    // quarantined — a wedged worker is not a bad point.
    farm::SupervisorOptions sup;
    sup.exePath = DDSIM_DDSWEEP;
    sup.workers = 2;
    sup.leaseSecs = 1.0;
    sup.workerArgs = {"--stall-worker=w0"};

    farm::SpoolStatus st = farm::superviseFarm(root, sup);
    EXPECT_TRUE(st.complete());
    EXPECT_EQ(st.quarantined, 0u);
    EXPECT_EQ(st.ok, smallGrid().jobs.size());

    std::string merged = root + "/merged.json";
    farm::mergeSpool(root, merged, root + "/farm.json");
    EXPECT_EQ(slurp(merged), referenceManifest());

    // Provenance: the stalled w0 completed nothing; other workers
    // picked up its share.
    JsonValue fdoc = parseJsonFile(root + "/farm.json");
    for (const JsonValue &sh :
         fdoc.at("shards", "farm").asArray("shards"))
        for (const JsonValue &job :
             sh.at("jobs", "shard").asArray("jobs"))
            EXPECT_NE(job.at("worker", "job").asString("worker"),
                      "w0");
}

TEST(Supervisor, HungJobIsQuarantinedByTheWallClockWatchdog)
{
    QuietGuard quiet;
    std::string root = freshDir("hung");
    farm::spoolGrid(smallGrid(), root, 2);

    // Every li attempt sleeps for 600s — far past the per-job wall
    // clock. The watchdog must SIGKILL the holding workers and
    // quarantine exactly the li points; the compress points complete.
    farm::SupervisorOptions sup;
    sup.exePath = DDSIM_DDSWEEP;
    sup.workers = 2;
    sup.jobWallSecs = 1.5;
    sup.workerArgs = {"--inject=hang:li::600"};

    farm::SpoolStatus st = farm::superviseFarm(root, sup);
    EXPECT_TRUE(st.complete());
    EXPECT_EQ(st.quarantined, 2u);
    EXPECT_EQ(st.ok, 2u);

    farm::Spool sp(root);
    farm::JobRecord rec = farm::jobRecordFromFile(
        sp.resultsDir() + "/" + farm::Spool::resultFileName(0));
    EXPECT_EQ(rec.status, JobStatus::Quarantined);
    EXPECT_EQ(rec.error.kind, "hung");
    EXPECT_FALSE(rec.error.transient);
}

#endif // DDSIM_DDSWEEP

// ---------------------------------------------------------------------
// Subprocess + JSON parser primitives the farm stands on
// ---------------------------------------------------------------------

TEST(Subprocess, ExitStatusRoundTrips)
{
    ProcessExit ex =
        waitProcess(spawnProcess({"/bin/sh", "-c", "exit 7"}));
    EXPECT_TRUE(ex.exited);
    EXPECT_EQ(ex.code, 7);
    EXPECT_FALSE(ex.ok());
    EXPECT_FALSE(ex.crashed());

    ex = waitProcess(spawnProcess({"/bin/sh", "-c", "kill -9 $$"}));
    EXPECT_TRUE(ex.signaled);
    EXPECT_EQ(ex.sig, 9);
    EXPECT_TRUE(ex.crashed());

    // Exec failure surfaces as exit 127, not a hang or a throw.
    ex = waitProcess(spawnProcess({"/nonexistent/binary"}));
    EXPECT_TRUE(ex.exited);
    EXPECT_EQ(ex.code, 127);
}

TEST(JsonParse, ParsesTheWriterDialect)
{
    JsonValue v = parseJson(
        "{\"a\": 1, \"b\": -2.5, \"c\": [true, null, \"x\\n\"],"
        " \"big\": 18446744073709551615}");
    EXPECT_EQ(v.at("a", "doc").asUint("a"), 1u);
    EXPECT_DOUBLE_EQ(v.at("b", "doc").asDouble("b"), -2.5);
    const auto &arr = v.at("c", "doc").asArray("c");
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_TRUE(arr[0].asBool("c0"));
    EXPECT_TRUE(arr[1].isNull());
    EXPECT_EQ(arr[2].asString("c2"), "x\n");
    // Beyond int64: still a number (double), not an integer.
    EXPECT_FALSE(v.at("big", "doc").isInteger);

    EXPECT_THROW(parseJson("{\"a\": }"), JsonParseError);
    EXPECT_THROW(parseJson("[1, 2,]"), JsonParseError);
    EXPECT_THROW(parseJson("{} extra"), JsonParseError);
    EXPECT_THROW(parseJson("\"unterminated"), JsonParseError);
    EXPECT_THROW(v.at("missing", "doc"), JsonParseError);
    EXPECT_THROW(v.at("a", "doc").asString("a"), JsonParseError);
}

TEST(JsonParse, RoundTripsAGridJobThroughTheWriter)
{
    GridSpec spec = smallGrid();
    std::ostringstream os;
    {
        JsonWriter w(os);
        writeGridJobJson(w, spec.jobs[1]);
    }
    GridJob back = gridJobFromJson(parseJson(os.str()));
    EXPECT_EQ(back.id, spec.jobs[1].id);
    EXPECT_EQ(back.workload, spec.jobs[1].workload);
    EXPECT_EQ(back.cfg.notation(), spec.jobs[1].cfg.notation());
}
