/**
 * @file
 * Functional unit pool tests: per-class capacity, pipelined vs
 * unpipelined occupancy, and the shared MULT/DIV units.
 */

#include <gtest/gtest.h>

#include "config/machine_config.hh"
#include "cpu/fu_pool.hh"

using namespace ddsim;
using namespace ddsim::cpu;
using ddsim::isa::FuClass;

namespace {

config::MachineConfig
smallCfg()
{
    config::MachineConfig cfg;
    cfg.numIntAlu = 2;
    cfg.numIntMultDiv = 1;
    cfg.numFpAlu = 2;
    cfg.numFpMultDiv = 1;
    return cfg;
}

} // namespace

TEST(FuPool, PoolSizesMatchConfig)
{
    FuPool pool(smallCfg());
    EXPECT_EQ(pool.poolSize(FuClass::IntAlu), 2);
    EXPECT_EQ(pool.poolSize(FuClass::IntMult), 1);
    EXPECT_EQ(pool.poolSize(FuClass::IntDiv), 1);
    EXPECT_EQ(pool.poolSize(FuClass::FpAlu), 2);
}

TEST(FuPool, PipelinedUnitsAcceptOnePerCycle)
{
    FuPool pool(smallCfg());
    EXPECT_TRUE(pool.tryIssue(FuClass::IntAlu, 0, 1, true));
    EXPECT_TRUE(pool.tryIssue(FuClass::IntAlu, 0, 1, true));
    EXPECT_FALSE(pool.tryIssue(FuClass::IntAlu, 0, 1, true));
    // Next cycle both are free again.
    EXPECT_TRUE(pool.tryIssue(FuClass::IntAlu, 1, 1, true));
    EXPECT_TRUE(pool.tryIssue(FuClass::IntAlu, 1, 1, true));
}

TEST(FuPool, PipelinedMultiCycleStillAcceptsNextCycle)
{
    FuPool pool(smallCfg());
    // A pipelined multiply (latency 5) frees its issue slot next cycle.
    EXPECT_TRUE(pool.tryIssue(FuClass::IntMult, 0, 5, true));
    EXPECT_TRUE(pool.tryIssue(FuClass::IntMult, 1, 5, true));
}

TEST(FuPool, UnpipelinedDivHoldsTheUnit)
{
    FuPool pool(smallCfg());
    EXPECT_TRUE(pool.tryIssue(FuClass::IntDiv, 0, 34, false));
    EXPECT_FALSE(pool.tryIssue(FuClass::IntDiv, 1, 34, false));
    EXPECT_FALSE(pool.tryIssue(FuClass::IntDiv, 33, 34, false));
    EXPECT_TRUE(pool.tryIssue(FuClass::IntDiv, 34, 34, false));
}

TEST(FuPool, MultAndDivShareUnits)
{
    FuPool pool(smallCfg());
    // The single IntMultDiv unit is taken by a divide...
    EXPECT_TRUE(pool.tryIssue(FuClass::IntDiv, 0, 34, false));
    // ...so a multiply cannot issue while it is busy.
    EXPECT_FALSE(pool.tryIssue(FuClass::IntMult, 5, 5, true));
    EXPECT_TRUE(pool.tryIssue(FuClass::IntMult, 34, 5, true));
}

TEST(FuPool, FpAndIntPoolsIndependent)
{
    FuPool pool(smallCfg());
    EXPECT_TRUE(pool.tryIssue(FuClass::IntAlu, 0, 1, true));
    EXPECT_TRUE(pool.tryIssue(FuClass::IntAlu, 0, 1, true));
    // Int ALUs exhausted; FP ALUs still available.
    EXPECT_TRUE(pool.tryIssue(FuClass::FpAlu, 0, 2, true));
}

TEST(FuPool, Table1Defaults)
{
    config::MachineConfig cfg; // defaults
    FuPool pool(cfg);
    EXPECT_EQ(pool.poolSize(FuClass::IntAlu), 16);
    EXPECT_EQ(pool.poolSize(FuClass::FpAlu), 16);
    EXPECT_EQ(pool.poolSize(FuClass::IntMult), 4);
    EXPECT_EQ(pool.poolSize(FuClass::FpDiv), 4);
}
