/**
 * @file
 * Assemble and run a MISA assembly file through the full simulator:
 * functional execution (PRINT output) plus cycle-accurate timing on a
 * chosen configuration.
 *
 * Usage: asm_runner [file.s] [--config=3+2] [--opt] [--stats]
 *                   [--trace]
 *
 * With no file argument a built-in demo program is run. --trace
 * streams a per-instruction timing log (dispatch/ready/commit cycles
 * and memory-queue placement).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "config/cli.hh"
#include "config/presets.hh"
#include "cpu/pipeline.hh"
#include "prog/asm_parser.hh"
#include "sim/runner.hh"
#include "vm/executor.hh"

using namespace ddsim;

namespace {

const char *demoSource = R"(# Demo: sum the squares 1..20 through a
# spill-heavy helper function.
        .data
count:  .word 20
        .text
main:
        lw   s0, 0(gp)          # count
        addi s1, zero, 0        # sum
loop:
        move a0, s0
        jal  square
        add  s1, s1, v0
        addi s0, s0, -1
        bgtz s0, loop
        print s1
        halt

square:                          # v0 = a0 * a0, via frame slots
        addi sp, sp, -8
        sw   a0, 0(sp) !local
        lw   t0, 0(sp) !local
        mul  v0, t0, t0
        sw   v0, 4(sp) !local
        lw   v0, 4(sp) !local
        addi sp, sp, 8
        ret
)";

} // namespace

int
main(int argc, char **argv)
{
    config::CliArgs args(argc, argv);

    std::string source;
    std::string name = "demo";
    if (!args.positional().empty()) {
        name = args.positional()[0];
        std::ifstream in(name);
        if (!in) {
            std::fprintf(stderr, "cannot open '%s'\n", name.c_str());
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    } else {
        source = demoSource;
        std::printf("(no file given; running the built-in demo)\n");
    }

    prog::Program program = prog::assemble(source, name);
    std::printf("assembled '%s': %zu instructions\n", name.c_str(),
                program.textSize());

    // Functional pass: correctness and PRINT output.
    vm::Executor exec(program);
    exec.run(1'000'000'000ull);
    if (!exec.halted()) {
        std::fprintf(stderr, "program did not halt within the "
                             "instruction budget\n");
        return 1;
    }
    std::printf("executed %llu instructions\n",
                (unsigned long long)exec.instsExecuted());
    for (Word w : exec.printed())
        std::printf("  print: %u (0x%08x)\n", w, w);

    // Timing pass.
    config::MachineConfig cfg =
        config::fromNotation(args.get("config", "3+2"));
    if (args.getBool("opt") && cfg.lvcEnabled) {
        cfg.fastForward = true;
        cfg.combining = 2;
    }
    args.markKnown("trace");
    args.markKnown("stats"); // queried below, in branches
    args.rejectUnknown();
    std::printf("\n%s\n", cfg.describe().c_str());

    if (args.getBool("trace")) {
        // Trace mode drives the pipeline directly so the per-
        // instruction log can stream to stdout.
        stats::Group root(nullptr, "");
        vm::Executor timedExec(program);
        cpu::Pipeline pipe(&root, cfg, timedExec);
        std::printf("\n     seq  pc       Dispatch Ready   Commit\n");
        pipe.setTrace(&std::cout);
        pipe.run();
        std::printf("\n%llu insts, %llu cycles, IPC %.3f\n",
                    (unsigned long long)pipe.committedInsts.value(),
                    (unsigned long long)pipe.numCycles.value(),
                    pipe.ipc());
        return 0;
    }

    sim::RunOptions opts;
    opts.captureStats = args.getBool("stats");
    sim::SimResult r = sim::run(program, cfg, opts);
    std::printf("%s\n", r.summary().c_str());
    if (opts.captureStats)
        std::printf("\n%s", r.statsText.c_str());
    return 0;
}
