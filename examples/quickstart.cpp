/**
 * @file
 * Quickstart: simulate one workload on the paper's baseline machine
 * and on the data-decoupled machine, and compare.
 *
 * Usage: quickstart [--workload=li] [--scale=1.0]
 *
 * Observability (applies to the decoupled run; see
 * docs/OBSERVABILITY.md):
 *   --manifest=<f>         write a JSON run manifest
 *   --trace=<f>            write a binary pipeline trace (see ddtrace)
 *   --sample=<f>           write interval stats (.json or .csv)
 *   --sample-interval=<n>  instructions between samples (default 10000)
 *   --sample-filter=<p,..> stat-path prefixes to sample (default: all)
 *
 * Run supervision (see docs/ROBUSTNESS.md):
 *   --max-cycles=<n>       simulated-cycle budget (0 = unlimited)
 *   --max-wall=<s>         wall-clock budget in seconds (0 = unlimited)
 *   --blackbox=<f>         write a JSON crash report if the run dies
 */

#include <cstdio>

#include "config/cli.hh"
#include "config/presets.hh"
#include "sim/runner.hh"
#include "util/log.hh"
#include "workloads/common.hh"

using namespace ddsim;

int
main(int argc, char **argv)
{
    config::CliArgs args(argc, argv);
    std::string name = args.get("workload", "li");
    double scale = args.getDouble("scale", 1.0);

    sim::RunOptions obsOpts;
    obsOpts.manifestPath = args.get("manifest");
    obsOpts.tracePath = args.get("trace");
    obsOpts.samplePath = args.get("sample");
    if (!obsOpts.samplePath.empty())
        obsOpts.sampleInterval = static_cast<std::uint64_t>(
            args.getInt("sample-interval", 10000));
    obsOpts.sampleFilter = args.get("sample-filter");
    obsOpts.maxCycles = static_cast<std::uint64_t>(
        args.getInt("max-cycles", 0));
    obsOpts.maxWallSeconds = args.getDouble("max-wall", 0.0);
    obsOpts.blackboxPath = args.get("blackbox");
    args.rejectUnknown();

    const workloads::WorkloadInfo *info = workloads::find(name);
    if (!info) {
        std::printf("unknown workload '%s'; available:", name.c_str());
        for (const auto &w : workloads::all())
            std::printf(" %s", w.name);
        std::printf("\n");
        return 1;
    }

    // 1. Build the synthetic SPEC95-like program.
    workloads::WorkloadParams params;
    params.scale = static_cast<std::uint64_t>(
        static_cast<double>(info->defaultScale) * scale);
    prog::Program program = info->factory(params);
    std::printf("workload %s (%s): %zu static instructions\n",
                info->paperName, info->description,
                program.textSize());

    // Every failure sim::run can hit is a typed SimError (no abort),
    // so one catch site turns any of them — bad config, blown budget,
    // deadlock, corrupt trace — into a clean exit. With --blackbox the
    // runner has already written the crash report by the time we land
    // here.
    try {
        // 2. The conventional machine: 16-wide, 2-port 32 KB L1
        //    ("(2+0)").
        sim::SimResult base = sim::run(program, config::baseline(2),
                                       {});
        std::printf("\n(2+0) conventional:      %s\n",
                    base.summary().c_str());

        // 3. The data-decoupled machine: 2-port L1 plus a 2-port 2 KB
        //    LVC fed by the LVAQ, with fast data forwarding and 2-way
        //    access combining ("(2+2)" optimized).
        sim::SimResult dec =
            sim::run(program, config::decoupledOptimized(2, 2),
                     obsOpts);
        std::printf("(2+2) data-decoupled:    %s\n",
                    dec.summary().c_str());

        std::printf("\nspeedup: %.2fx\n", sim::speedup(dec, base));
        std::printf("LVC hit rate: %.2f%% (%llu accesses)\n",
                    (1.0 - dec.lvcMissRate) * 100.0,
                    (unsigned long long)dec.lvcAccesses);
        std::printf("loads satisfied inside the LVAQ: %.0f%% "
                    "(%llu forwarded, %llu fast-forwarded)\n",
                    dec.lvaqSatisfiedFrac * 100.0,
                    (unsigned long long)dec.lvaqForwards,
                    (unsigned long long)dec.lvaqFastForwards);
        std::printf("L2 bus traffic: %llu -> %llu accesses\n",
                    (unsigned long long)base.l2Accesses,
                    (unsigned long long)dec.l2Accesses);
    } catch (const SimError &e) {
        std::fprintf(stderr, "run failed [%s]: %s\n", e.kind().c_str(),
                     e.what());
        if (!obsOpts.blackboxPath.empty())
            std::fprintf(stderr, "crash report: %s\n",
                         obsOpts.blackboxPath.c_str());
        return 1;
    }

    return 0;
}
