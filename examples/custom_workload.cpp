/**
 * @file
 * Building a custom workload with the ProgramBuilder API: a small
 * "image blur" kernel that keeps a sliding window of pixels in stack
 * slots (spill-style local traffic) while streaming a heap image —
 * then measuring how the decoupled memory system treats it.
 *
 * This is the API a user would reach for to test their own access
 * patterns against the data-decoupled architecture.
 */

#include <cstdio>

#include "config/presets.hh"
#include "prog/builder.hh"
#include "sim/runner.hh"
#include "vm/executor.hh"

using namespace ddsim;
using namespace ddsim::prog;
namespace reg = ddsim::isa::reg;

namespace {

Program
buildBlurKernel(int rows)
{
    ProgramBuilder b("blur");
    constexpr int Width = 256;
    const Addr image = layout::HeapBase;

    Label main = b.newLabel("main");
    Label blurRow = b.newLabel("blur_row");

    b.bind(main);
    // Fill one image row region with a ramp.
    b.li(reg::t0, 0);
    b.la(reg::t1, image);
    b.li(reg::t2, Width * (rows + 2));
    Label fill = b.here();
    b.sw(reg::t0, 0, reg::t1);
    b.addi(reg::t1, reg::t1, 4);
    b.addi(reg::t0, reg::t0, 1);
    b.slt(reg::t3, reg::t0, reg::t2);
    b.bne(reg::t3, reg::zero, fill);

    b.li(reg::s0, rows);
    b.li(reg::s1, 0);                   // checksum
    b.la(reg::s2, image);
    Label loop = b.here();
    b.move(reg::a0, reg::s2);
    b.jal(blurRow);
    b.add(reg::s1, reg::s1, reg::v0);
    b.addi(reg::s2, reg::s2, Width * 4);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, loop);
    b.print(reg::s1);
    b.halt();

    // blur_row(rowPtr): 3-tap horizontal blur with the sliding
    // window spilled to frame slots (local traffic with short reuse).
    b.bind(blurRow);
    FrameSpec f;
    f.localWords = 4;
    f.savedRegs = {reg::s3};
    b.prologue(f);
    b.lw(reg::t0, 0, reg::a0);          // window[0]
    b.lw(reg::t1, 4, reg::a0);          // window[1]
    b.storeLocal(reg::t0, 0);
    b.storeLocal(reg::t1, 1);
    b.li(reg::s3, Width - 2);
    b.li(reg::v0, 0);
    Label cell = b.here();
    b.lw(reg::t2, 8, reg::a0);          // incoming pixel
    b.loadLocal(reg::t0, 0);            // spilled window taps
    b.loadLocal(reg::t1, 1);
    b.add(reg::t3, reg::t0, reg::t1);
    b.add(reg::t3, reg::t3, reg::t2);
    b.sw(reg::t3, 4, reg::a0);          // blurred pixel
    b.add(reg::v0, reg::v0, reg::t3);
    b.storeLocal(reg::t1, 0);           // slide the window
    b.storeLocal(reg::t2, 1);
    b.addi(reg::a0, reg::a0, 4);
    b.addi(reg::s3, reg::s3, -1);
    b.bgtz(reg::s3, cell);
    b.epilogue(f);

    return b.finish();
}

} // namespace

int
main()
{
    Program program = buildBlurKernel(400);
    std::printf("built '%s': %zu instructions of text\n",
                program.name().c_str(), program.textSize());

    // Check the kernel functionally first.
    vm::Executor exec(program);
    exec.run(100'000'000);
    std::printf("functional run: %llu instructions, checksum %u\n",
                (unsigned long long)exec.instsExecuted(),
                exec.printed().empty() ? 0u : exec.printed()[0]);

    // Now time it on three machines.
    struct
    {
        const char *label;
        config::MachineConfig cfg;
    } machines[] = {
        {"(2+0) conventional", config::baseline(2)},
        {"(2+2) decoupled", config::decoupled(2, 2)},
        {"(2+2) + fastfwd + combining",
         config::decoupledOptimized(2, 2)},
    };
    for (auto &[label, cfg] : machines) {
        sim::SimResult r = sim::run(program, cfg);
        std::printf("%-30s IPC %.3f  (LVAQ-satisfied loads: %.0f%%, "
                    "fast forwards: %llu)\n",
                    label, r.ipc, r.lvaqSatisfiedFrac * 100.0,
                    (unsigned long long)r.lvaqFastForwards);
    }
    std::printf("\nThe spilled sliding window is exactly the pattern "
                "fast data forwarding targets:\nthe store and reload "
                "share the frame slot offset within one sp-epoch.\n");
    return 0;
}
