/**
 * @file
 * Port sweep: explore the (N+M) design space for one workload — the
 * experiment at the heart of the paper, interactively.
 *
 * Usage: port_sweep [--workload=vortex] [--scale=1.0]
 *                   [--opt] (enable fast forwarding + combining)
 *                   [--jobs=N] (sweep worker threads; default: all
 *                   hardware threads — results are identical for any N)
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "config/cli.hh"
#include "config/presets.hh"
#include "sim/sweep.hh"
#include "sim/table.hh"
#include "workloads/common.hh"

using namespace ddsim;

int
main(int argc, char **argv)
{
    config::CliArgs args(argc, argv);
    std::string name = args.get("workload", "vortex");
    bool optimized = args.getBool("opt");

    const workloads::WorkloadInfo *info = workloads::find(name);
    if (!info) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }
    workloads::WorkloadParams params;
    params.scale = static_cast<std::uint64_t>(
        static_cast<double>(info->defaultScale) *
        args.getDouble("scale", 1.0));
    auto program = std::make_shared<const prog::Program>(
        info->factory(params));
    args.markKnown("jobs"); // queried below, after this check
    args.rejectUnknown();

    std::printf("(N+M) IPC sweep for %s%s\n", info->paperName,
                optimized ? " (fast forwarding + 2-way combining)"
                          : " (no optimizations)");

    // The 4x5 grid points are independent simulations: fan them out
    // across the worker pool and read them back in submission order.
    sim::SweepRunner sweep(
        static_cast<unsigned>(args.getInt("jobs", 0)));
    for (int n = 1; n <= 4; ++n) {
        for (int m = 0; m <= 4; ++m) {
            config::MachineConfig cfg =
                m == 0 ? config::baseline(n)
                       : (optimized ? config::decoupledOptimized(n, m)
                                    : config::decoupled(n, m));
            sweep.submit(program, cfg);
        }
    }
    std::vector<sim::SimResult> results = sweep.collect();

    sim::Table table({"", "M=0", "M=1", "M=2", "M=3", "M=4"});
    std::size_t k = 0;
    for (int n = 1; n <= 4; ++n) {
        std::vector<std::string> row{"N=" + std::to_string(n)};
        for (int m = 0; m <= 4; ++m)
            row.push_back(sim::Table::num(results[k++].ipc, 3));
        table.addRow(row);
    }
    table.print(std::cout);

    std::printf("\nReading guide: N = L1 data cache ports, M = LVC "
                "ports (M=0 disables decoupling).\n"
                "Look for the paper's signature: a dip at M=1, "
                "recovery at M=2, saturation by M=3.\n");
    return 0;
}
