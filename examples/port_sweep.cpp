/**
 * @file
 * Port sweep: explore the (N+M) design space for one workload — the
 * experiment at the heart of the paper, interactively.
 *
 * Usage: port_sweep [--workload=vortex] [--scale=1.0]
 *                   [--opt] (enable fast forwarding + combining)
 */

#include <cstdio>
#include <iostream>

#include "config/cli.hh"
#include "config/presets.hh"
#include "sim/runner.hh"
#include "sim/table.hh"
#include "workloads/common.hh"

using namespace ddsim;

int
main(int argc, char **argv)
{
    config::CliArgs args(argc, argv);
    std::string name = args.get("workload", "vortex");
    bool optimized = args.getBool("opt");

    const workloads::WorkloadInfo *info = workloads::find(name);
    if (!info) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }
    workloads::WorkloadParams params;
    params.scale = static_cast<std::uint64_t>(
        static_cast<double>(info->defaultScale) *
        args.getDouble("scale", 1.0));
    prog::Program program = info->factory(params);

    std::printf("(N+M) IPC sweep for %s%s\n", info->paperName,
                optimized ? " (fast forwarding + 2-way combining)"
                          : " (no optimizations)");

    sim::Table table({"", "M=0", "M=1", "M=2", "M=3", "M=4"});
    for (int n = 1; n <= 4; ++n) {
        std::vector<std::string> row{"N=" + std::to_string(n)};
        for (int m = 0; m <= 4; ++m) {
            config::MachineConfig cfg =
                m == 0 ? config::baseline(n)
                       : (optimized ? config::decoupledOptimized(n, m)
                                    : config::decoupled(n, m));
            sim::SimResult r = sim::run(program, cfg);
            row.push_back(sim::Table::num(r.ipc, 3));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::printf("\nReading guide: N = L1 data cache ports, M = LVC "
                "ports (M=0 disables decoupling).\n"
                "Look for the paper's signature: a dip at M=1, "
                "recovery at M=2, saturation by M=3.\n");
    return 0;
}
