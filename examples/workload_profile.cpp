/**
 * @file
 * Profile the synthetic workloads: the characterization data of the
 * paper's Section 2.2 (instruction mix, local fractions, frame sizes,
 * call structure) for any or all of the twelve programs — the tool to
 * reach for when calibrating a new workload generator.
 *
 * Usage: workload_profile [--programs=li,vortex] [--scale=1.0]
 */

#include <cstdio>
#include <iostream>

#include "config/cli.hh"
#include "sim/table.hh"
#include "util/str.hh"
#include "stats/group.hh"
#include "vm/executor.hh"
#include "vm/trace.hh"
#include "workloads/common.hh"

using namespace ddsim;

int
main(int argc, char **argv)
{
    config::CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 1.0);
    std::vector<std::string> names;
    if (args.has("programs")) {
        for (auto &n : split(args.get("programs"), ','))
            names.emplace_back(trim(n));
    } else {
        for (const auto &w : workloads::all())
            names.push_back(w.name);
    }
    args.rejectUnknown();

    sim::Table table({"program", "insts", "ld%", "st%", "locLd%",
                      "locSt%", "locRef%", "dynFrame", "statFrame",
                      "calls", "maxDepth"});

    for (const auto &name : names) {
        const workloads::WorkloadInfo *info = workloads::find(name);
        if (!info) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         name.c_str());
            return 1;
        }
        workloads::WorkloadParams p;
        p.scale = static_cast<std::uint64_t>(
            static_cast<double>(info->defaultScale) * scale);
        if (p.scale == 0)
            p.scale = 1;
        prog::Program program = info->factory(p);

        vm::Executor exec(program);
        stats::Group root(nullptr, "");
        vm::StreamStats ss(&root);
        while (!exec.halted())
            ss.record(exec.step());

        double staticSum = 0;
        for (const auto &[pc, words] : ss.staticFrames())
            staticSum += words;
        double staticMean =
            ss.staticFrames().empty()
                ? 0
                : staticSum /
                      static_cast<double>(ss.staticFrames().size());

        table.addRow(
            {info->paperName,
             std::to_string(ss.instructions.value()),
             sim::Table::pct(ss.loadFrac()),
             sim::Table::pct(ss.storeFrac()),
             sim::Table::pct(ss.localLoadFrac()),
             sim::Table::pct(ss.localStoreFrac()),
             sim::Table::pct(ss.localRefFrac()),
             sim::Table::num(ss.frameWords.mean(), 1),
             sim::Table::num(staticMean, 1),
             std::to_string(ss.calls.value()),
             std::to_string(ss.callDepth.maxValue())});
    }
    table.print(std::cout);
    std::printf("\nReference points (paper, Section 2.2): local "
                "fractions average ~30%% of loads / ~48%% of stores;\n"
                "147.vortex is the most local (~71%% of refs), "
                "129.compress the least (~10%%); frames are small.\n");
    return 0;
}
